//! Byte-accurate traffic accounting.

use std::sync::Mutex;

use vela_obs::LazyCounter;

use crate::topology::{DeviceId, Topology};

/// Cumulative byte totals mirrored into `vela-obs` alongside the
/// windowed [`StepTraffic`] accounting, plus one dynamic
/// `cluster.link.{src}->{dst}` counter per observed device pair. The
/// obs counters see exactly the transfers [`TrafficLedger::record`]
/// accepts (same self-transfer/zero-byte filtering), so trace totals
/// and engine-reported traffic agree by construction.
static LINK_INTERNAL: LazyCounter = LazyCounter::new("cluster.bytes.internal");
static LINK_EXTERNAL: LazyCounter = LazyCounter::new("cluster.bytes.external");

/// Traffic accumulated within one window (one fine-tuning step in the
/// evaluation).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepTraffic {
    /// Bytes that crossed node boundaries, attributed to the *sending*
    /// node, indexed by node id.
    pub external_sent_per_node: Vec<u64>,
    /// Bytes that crossed node boundaries, attributed to the *receiving*
    /// node, indexed by node id.
    pub external_recv_per_node: Vec<u64>,
    /// Bytes moved between devices of the same node.
    pub internal_bytes: u64,
    /// All bytes moved (internal + external).
    pub total_bytes: u64,
    /// Subset of `total_bytes` spent keeping expert replicas
    /// bit-identical (gradient fetch/install frames). Zero when
    /// replication is off.
    pub sync_bytes: u64,
    /// Subset of `total_bytes` spent moving expert parameters between
    /// workers (migration fetches, expert-state installs, chunked
    /// shadow transfers). Background migration spreads these bytes
    /// across several step windows; summed over the migration window
    /// they equal a stop-the-world migration's single-window total by
    /// construction.
    pub migration_bytes: u64,
}

impl StepTraffic {
    /// Total cross-node bytes.
    pub fn external_total(&self) -> u64 {
        self.external_sent_per_node.iter().sum()
    }

    /// The paper's Fig. 5 metric: average cross-node traffic per node
    /// (bytes each node pushed onto the inter-node network, averaged over
    /// nodes; receive totals mirror send totals cluster-wide).
    pub fn external_avg_per_node(&self) -> f64 {
        let nodes = self.external_sent_per_node.len().max(1) as f64;
        self.external_sent_per_node.iter().sum::<u64>() as f64 / nodes
    }
}

/// A thread-safe ledger of inter-device transfers.
///
/// The runtime's transports record every message here; the evaluation
/// drains one [`StepTraffic`] per fine-tuning step.
#[derive(Debug)]
pub struct TrafficLedger {
    topology: Topology,
    window: Mutex<StepTraffic>,
}

impl TrafficLedger {
    /// A ledger over `topology` with an empty window.
    pub fn new(topology: Topology) -> Self {
        let nodes = topology.node_count();
        TrafficLedger {
            topology,
            window: Mutex::new(StepTraffic {
                external_sent_per_node: vec![0; nodes],
                external_recv_per_node: vec![0; nodes],
                internal_bytes: 0,
                total_bytes: 0,
                sync_bytes: 0,
                migration_bytes: 0,
            }),
        }
    }

    /// The topology this ledger classifies transfers against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Records a transfer of `bytes` from `src` to `dst`. Transfers within
    /// one device are free and ignored.
    pub fn record(&self, src: DeviceId, dst: DeviceId, bytes: u64) {
        if src == dst || bytes == 0 {
            return;
        }
        let mut w = self.window.lock().unwrap();
        w.total_bytes += bytes;
        let (sn, dn) = (self.topology.node_of(src), self.topology.node_of(dst));
        if sn == dn {
            w.internal_bytes += bytes;
        } else {
            w.external_sent_per_node[sn.0] += bytes;
            w.external_recv_per_node[dn.0] += bytes;
        }
        drop(w);
        if vela_obs::enabled() {
            if sn == dn {
                LINK_INTERNAL.add(bytes);
            } else {
                LINK_EXTERNAL.add(bytes);
            }
            vela_obs::counter(&format!("cluster.link.{}->{}", src.0, dst.0)).add(bytes);
        }
    }

    /// Records a replica gradient-sync transfer. The bytes land in the
    /// same per-link totals as [`TrafficLedger::record`] — sync traffic
    /// is real traffic — and are additionally tallied under
    /// [`StepTraffic::sync_bytes`] so reports can break it out.
    pub fn record_sync(&self, src: DeviceId, dst: DeviceId, bytes: u64) {
        if src == dst || bytes == 0 {
            return;
        }
        self.record(src, dst, bytes);
        self.window.lock().unwrap().sync_bytes += bytes;
    }

    /// Records an expert parameter-movement transfer (migration fetch,
    /// expert-state install, or chunked shadow-transfer frame). Like
    /// [`TrafficLedger::record_sync`] the bytes land in the normal
    /// per-link totals and are additionally tallied under
    /// [`StepTraffic::migration_bytes`].
    pub fn record_migration(&self, src: DeviceId, dst: DeviceId, bytes: u64) {
        if src == dst || bytes == 0 {
            return;
        }
        self.record(src, dst, bytes);
        self.window.lock().unwrap().migration_bytes += bytes;
    }

    /// Current window without resetting.
    pub fn peek(&self) -> StepTraffic {
        self.window.lock().unwrap().clone()
    }

    /// Drains the window, returning its totals and resetting counters.
    pub fn take_step(&self) -> StepTraffic {
        let nodes = self.topology.node_count();
        std::mem::replace(
            &mut *self.window.lock().unwrap(),
            StepTraffic {
                external_sent_per_node: vec![0; nodes],
                external_recv_per_node: vec![0; nodes],
                internal_bytes: 0,
                total_bytes: 0,
                sync_bytes: 0,
                migration_bytes: 0,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> TrafficLedger {
        TrafficLedger::new(Topology::paper_testbed())
    }

    #[test]
    fn classifies_internal_vs_external() {
        let l = ledger();
        l.record(DeviceId(0), DeviceId(1), 100); // same node 0
        l.record(DeviceId(0), DeviceId(2), 200); // node 0 -> node 1
        let t = l.peek();
        assert_eq!(t.internal_bytes, 100);
        assert_eq!(t.external_sent_per_node, vec![200, 0, 0]);
        assert_eq!(t.external_recv_per_node, vec![0, 200, 0]);
        assert_eq!(t.total_bytes, 300);
        assert_eq!(t.external_total(), 200);
    }

    #[test]
    fn self_transfers_are_free() {
        let l = ledger();
        l.record(DeviceId(3), DeviceId(3), 1_000_000);
        assert_eq!(l.peek().total_bytes, 0);
    }

    #[test]
    fn take_step_resets() {
        let l = ledger();
        l.record(DeviceId(0), DeviceId(4), 50);
        let first = l.take_step();
        assert_eq!(first.external_total(), 50);
        assert_eq!(l.peek().total_bytes, 0);
        assert_eq!(l.peek().external_sent_per_node.len(), 3);
    }

    #[test]
    fn avg_per_node_counts_sent_bytes() {
        let l = ledger();
        l.record(DeviceId(0), DeviceId(2), 300); // n0 -> n1
        let t = l.peek();
        // 300 sent by n0, over 3 nodes = 100.
        assert!((t.external_avg_per_node() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_sent_equals_received() {
        let l = ledger();
        let transfers = [
            (0usize, 2usize, 10u64),
            (2, 4, 20),
            (4, 0, 30),
            (1, 5, 40),
            (3, 1, 50),
        ];
        for &(s, d, b) in &transfers {
            l.record(DeviceId(s), DeviceId(d), b);
        }
        let t = l.peek();
        assert_eq!(
            t.external_sent_per_node.iter().sum::<u64>(),
            t.external_recv_per_node.iter().sum::<u64>()
        );
    }

    #[test]
    fn sync_bytes_counted_and_included_in_totals() {
        let l = ledger();
        l.record(DeviceId(0), DeviceId(2), 100);
        l.record_sync(DeviceId(0), DeviceId(1), 40); // internal link
        l.record_sync(DeviceId(2), DeviceId(0), 60); // external link
        l.record_sync(DeviceId(3), DeviceId(3), 999); // self: free
        let t = l.take_step();
        assert_eq!(t.sync_bytes, 100);
        assert_eq!(t.total_bytes, 200);
        assert_eq!(t.internal_bytes, 40);
        assert_eq!(l.peek().sync_bytes, 0);
    }

    #[test]
    fn migration_bytes_counted_and_included_in_totals() {
        let l = ledger();
        l.record(DeviceId(0), DeviceId(2), 100);
        l.record_migration(DeviceId(0), DeviceId(1), 70); // internal link
        l.record_migration(DeviceId(2), DeviceId(0), 30); // external link
        l.record_migration(DeviceId(3), DeviceId(3), 999); // self: free
        let t = l.take_step();
        assert_eq!(t.migration_bytes, 100);
        assert_eq!(t.sync_bytes, 0);
        assert_eq!(t.total_bytes, 200);
        assert_eq!(t.internal_bytes, 70);
        assert_eq!(l.peek().migration_bytes, 0);
    }

    #[test]
    fn concurrent_recording() {
        let l = std::sync::Arc::new(ledger());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.record(DeviceId(0), DeviceId(2), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.peek().external_total(), 4000);
    }
}

//! Cluster topology, bandwidth, communication cost model, virtual clock and
//! traffic ledger.
//!
//! This crate is the testbed substitute: the paper evaluates on 3 nodes ×
//! 2 NVIDIA V100s with 18.3 GB/s intra-node and 1.17 GB/s inter-node links;
//! [`Topology::paper_testbed`] encodes exactly that. On top of the topology
//! sit:
//!
//! * [`CostModel`] — the communication-time expressions of the paper
//!   (Eqs. (5)–(7)): one-to-all master/worker transfers, the all-to-all
//!   exchange of conventional expert parallelism (including its
//!   status-synchronization round), ring all-reduce, and compute time;
//! * [`TrafficLedger`] — byte-accurate accounting of every transfer,
//!   aggregated per node into the *external traffic* metric of Fig. 5;
//! * [`VirtualClock`] — accumulates simulated seconds per category so
//!   Fig. 6's step-time numbers are deterministic and hardware-independent.

pub mod bandwidth;
pub mod clock;
pub mod cost;
pub mod ledger;
pub mod topology;

pub use bandwidth::Bandwidth;
pub use clock::{TimeBreakdown, VirtualClock};
pub use cost::CostModel;
pub use ledger::{StepTraffic, TrafficLedger};
pub use topology::{DeviceId, NodeId, Topology};

//! Cluster topology: nodes, devices and link characteristics.

use std::fmt;

use crate::Bandwidth;

/// Identifies a compute node (machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a compute device (GPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// One compute device.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Global device id.
    pub id: DeviceId,
    /// The node hosting this device.
    pub node: NodeId,
    /// Device memory in bytes (caps expert capacity, constraint (11)).
    pub mem_bytes: u64,
    /// Sustained training throughput in FLOP/s.
    pub flops: f64,
}

/// A cluster of nodes, each with identical devices, connected by fast
/// intra-node links and a slower inter-node network. Individual node
/// pairs may override the inter-node bandwidth (heterogeneous networks,
/// e.g. one rack-local peer and one remote peer).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    devices: Vec<Device>,
    intra_bw: Bandwidth,
    inter_bw: Bandwidth,
    intra_latency_s: f64,
    inter_latency_s: f64,
    /// `(min(node_a, node_b), max(node_a, node_b)) -> bandwidth` overrides.
    link_overrides: Vec<((usize, usize), Bandwidth)>,
}

/// Builder for [`Topology`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    nodes: usize,
    devices_per_node: usize,
    intra_bw: Bandwidth,
    inter_bw: Bandwidth,
    intra_latency_s: f64,
    inter_latency_s: f64,
    mem_bytes: u64,
    flops: f64,
    link_overrides: Vec<((usize, usize), Bandwidth)>,
}

impl TopologyBuilder {
    /// Starts a builder for `nodes × devices_per_node` devices.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(nodes: usize, devices_per_node: usize) -> Self {
        assert!(nodes > 0 && devices_per_node > 0, "empty topology");
        TopologyBuilder {
            nodes,
            devices_per_node,
            intra_bw: Bandwidth::from_gbytes_per_sec(18.3),
            inter_bw: Bandwidth::from_gbytes_per_sec(1.17),
            intra_latency_s: 10e-6,
            inter_latency_s: 100e-6,
            mem_bytes: 32 * (1 << 30),
            flops: 1.0e14,
            link_overrides: Vec::new(),
        }
    }

    /// Sets intra-node (PCIe/NVLink) bandwidth.
    pub fn intra_bandwidth(&mut self, bw: Bandwidth) -> &mut Self {
        self.intra_bw = bw;
        self
    }

    /// Sets inter-node (network) bandwidth.
    pub fn inter_bandwidth(&mut self, bw: Bandwidth) -> &mut Self {
        self.inter_bw = bw;
        self
    }

    /// Sets one-way latencies (seconds) for intra- and inter-node links.
    pub fn latencies(&mut self, intra_s: f64, inter_s: f64) -> &mut Self {
        self.intra_latency_s = intra_s;
        self.inter_latency_s = inter_s;
        self
    }

    /// Sets per-device memory in bytes.
    pub fn device_memory(&mut self, bytes: u64) -> &mut Self {
        self.mem_bytes = bytes;
        self
    }

    /// Sets per-device sustained FLOP/s.
    pub fn device_flops(&mut self, flops: f64) -> &mut Self {
        self.flops = flops;
        self
    }

    /// Overrides the bandwidth of the link between two specific nodes
    /// (heterogeneous inter-node network).
    ///
    /// # Panics
    /// Panics if the nodes are equal or out of range.
    pub fn node_link(&mut self, a: usize, b: usize, bw: Bandwidth) -> &mut Self {
        assert!(a != b, "node link needs two distinct nodes");
        assert!(a < self.nodes && b < self.nodes, "node out of range");
        let key = (a.min(b), a.max(b));
        self.link_overrides.retain(|(k, _)| *k != key);
        self.link_overrides.push((key, bw));
        self
    }

    /// Builds the topology.
    pub fn build(&self) -> Topology {
        let mut devices = Vec::with_capacity(self.nodes * self.devices_per_node);
        for n in 0..self.nodes {
            for d in 0..self.devices_per_node {
                devices.push(Device {
                    id: DeviceId(n * self.devices_per_node + d),
                    node: NodeId(n),
                    mem_bytes: self.mem_bytes,
                    flops: self.flops,
                });
            }
        }
        Topology {
            devices,
            intra_bw: self.intra_bw,
            inter_bw: self.inter_bw,
            intra_latency_s: self.intra_latency_s,
            inter_latency_s: self.inter_latency_s,
            link_overrides: self.link_overrides.clone(),
        }
    }
}

impl Topology {
    /// The paper's testbed (§V-A): 3 nodes × 2 V100s (32 GB), 18.3 GB/s
    /// intra-node, 1.17 GB/s Ethernet inter-node.
    pub fn paper_testbed() -> Self {
        TopologyBuilder::new(3, 2).build()
    }

    /// Starts building a custom topology.
    pub fn builder(nodes: usize, devices_per_node: usize) -> TopologyBuilder {
        TopologyBuilder::new(nodes, devices_per_node)
    }

    /// All devices, ordered by id.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.node.0)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// The device record for `id`.
    ///
    /// # Panics
    /// Panics if the id is unknown.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// The node hosting `id`.
    pub fn node_of(&self, id: DeviceId) -> NodeId {
        self.device(id).node
    }

    /// Whether two devices share a node.
    pub fn same_node(&self, a: DeviceId, b: DeviceId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Bandwidth of the link between two devices (intra-node bandwidth for
    /// a device to itself, where transfers are effectively free but keeping
    /// a finite number avoids division by zero in cost formulas).
    pub fn bandwidth(&self, a: DeviceId, b: DeviceId) -> Bandwidth {
        if self.same_node(a, b) {
            return self.intra_bw;
        }
        let (na, nb) = (self.node_of(a).0, self.node_of(b).0);
        let key = (na.min(nb), na.max(nb));
        self.link_overrides
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(self.inter_bw, |(_, bw)| *bw)
    }

    /// One-way latency between two devices, in seconds (zero for a device
    /// to itself).
    pub fn latency(&self, a: DeviceId, b: DeviceId) -> f64 {
        if a == b {
            0.0
        } else if self.same_node(a, b) {
            self.intra_latency_s
        } else {
            self.inter_latency_s
        }
    }

    /// Simulated `iperf`-style measurement: the effective bandwidth seen by
    /// a probe of `probe_bytes` between two devices, including latency.
    ///
    /// # Panics
    /// Panics if `probe_bytes` is zero or the devices are equal.
    pub fn measure_bandwidth(&self, a: DeviceId, b: DeviceId, probe_bytes: u64) -> Bandwidth {
        assert!(probe_bytes > 0, "probe needs bytes");
        assert_ne!(a, b, "cannot measure a device against itself");
        let t = self.latency(a, b) + self.bandwidth(a, b).transfer_secs(probe_bytes);
        Bandwidth::from_bytes_per_sec(probe_bytes as f64 / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.device_count(), 6);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.node_of(DeviceId(0)), NodeId(0));
        assert_eq!(t.node_of(DeviceId(5)), NodeId(2));
        assert!(t.same_node(DeviceId(2), DeviceId(3)));
        assert!(!t.same_node(DeviceId(1), DeviceId(2)));
    }

    #[test]
    fn paper_bandwidths() {
        let t = Topology::paper_testbed();
        let intra = t.bandwidth(DeviceId(0), DeviceId(1));
        let inter = t.bandwidth(DeviceId(0), DeviceId(2));
        assert!((intra.gbytes_per_sec() - 18.3).abs() < 1e-9);
        assert!((inter.gbytes_per_sec() - 1.17).abs() < 1e-9);
    }

    #[test]
    fn latency_structure() {
        let t = Topology::paper_testbed();
        assert_eq!(t.latency(DeviceId(0), DeviceId(0)), 0.0);
        assert!(t.latency(DeviceId(0), DeviceId(1)) < t.latency(DeviceId(0), DeviceId(2)));
    }

    #[test]
    fn measured_bandwidth_approaches_nominal_for_large_probes() {
        let t = Topology::paper_testbed();
        let m = t.measure_bandwidth(DeviceId(0), DeviceId(2), 1 << 30);
        let nominal = t.bandwidth(DeviceId(0), DeviceId(2));
        assert!((m.gbytes_per_sec() - nominal.gbytes_per_sec()).abs() < 0.01);
        // A tiny probe is latency-dominated and measures much lower.
        let tiny = t.measure_bandwidth(DeviceId(0), DeviceId(2), 1024);
        assert!(tiny.bytes_per_sec() < 0.5 * nominal.bytes_per_sec());
    }

    #[test]
    fn builder_customization() {
        let t = Topology::builder(2, 4)
            .intra_bandwidth(Bandwidth::from_gbytes_per_sec(50.0))
            .inter_bandwidth(Bandwidth::from_gbytes_per_sec(5.0))
            .latencies(1e-6, 1e-4)
            .device_memory(16 << 30)
            .device_flops(1e13)
            .build();
        assert_eq!(t.device_count(), 8);
        assert_eq!(t.device(DeviceId(0)).mem_bytes, 16 << 30);
        assert_eq!(t.device(DeviceId(0)).flops, 1e13);
        assert!((t.bandwidth(DeviceId(0), DeviceId(4)).gbytes_per_sec() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_link_overrides() {
        let t = Topology::builder(3, 2)
            .node_link(0, 1, Bandwidth::from_gbytes_per_sec(10.0))
            .node_link(0, 2, Bandwidth::from_gbytes_per_sec(0.5))
            .build();
        // node0 (gpus 0,1) <-> node1 (gpus 2,3): overridden fast.
        assert!((t.bandwidth(DeviceId(0), DeviceId(2)).gbytes_per_sec() - 10.0).abs() < 1e-9);
        // node0 <-> node2 (gpus 4,5): overridden slow, symmetric.
        assert!((t.bandwidth(DeviceId(4), DeviceId(1)).gbytes_per_sec() - 0.5).abs() < 1e-9);
        // node1 <-> node2: untouched default.
        assert!((t.bandwidth(DeviceId(2), DeviceId(4)).gbytes_per_sec() - 1.17).abs() < 1e-9);
        // Intra-node unaffected.
        assert!((t.bandwidth(DeviceId(0), DeviceId(1)).gbytes_per_sec() - 18.3).abs() < 1e-9);
    }

    #[test]
    fn node_link_last_override_wins() {
        let t = Topology::builder(2, 1)
            .node_link(0, 1, Bandwidth::from_gbytes_per_sec(2.0))
            .node_link(1, 0, Bandwidth::from_gbytes_per_sec(4.0))
            .build();
        assert!((t.bandwidth(DeviceId(0), DeviceId(1)).gbytes_per_sec() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two distinct nodes")]
    fn self_link_panics() {
        Topology::builder(2, 1).node_link(1, 1, Bandwidth::from_gbytes_per_sec(1.0));
    }

    #[test]
    #[should_panic(expected = "empty topology")]
    fn empty_topology_panics() {
        Topology::builder(0, 2);
    }
}

//! The communication/compute cost model (Eqs. (5)–(7) of the paper).

use crate::topology::{DeviceId, Topology};

/// Computes transfer, synchronization and compute times over a
/// [`Topology`].
///
/// Two communication patterns matter to the evaluation:
///
/// * **one-to-all** (VELA's master–worker design): the master exchanges
///   data with each worker directly; workers transfer concurrently, so a
///   block's communication time is the *maximum* over workers (Eq. (7));
/// * **all-to-all** (conventional expert parallelism): every device
///   exchanges with every other, and the transfer must be preceded by a
///   *status synchronization* round in which devices agree on how many
///   tokens each will receive — the overhead VELA's architecture removes
///   (§V-B, "Fine-tuning acceleration").
#[derive(Debug, Clone)]
pub struct CostModel {
    topology: Topology,
    /// Fixed software overhead per synchronization round, seconds.
    sync_software_overhead_s: f64,
}

impl CostModel {
    /// A cost model over `topology` with the default per-round
    /// synchronization overhead (2 ms — the size-exchange collective plus
    /// host-side synchronization that frameworks run before each
    /// all-to-all on an Ethernet cluster).
    pub fn new(topology: Topology) -> Self {
        CostModel {
            topology,
            sync_software_overhead_s: 2e-3,
        }
    }

    /// Overrides the fixed per-round synchronization overhead.
    pub fn with_sync_overhead(mut self, secs: f64) -> Self {
        self.sync_software_overhead_s = secs;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Time to move `bytes` from `src` to `dst` (latency + serialization).
    /// Zero for a device to itself.
    pub fn transfer_time(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        if src == dst {
            return 0.0;
        }
        self.topology.latency(src, dst) + self.topology.bandwidth(src, dst).transfer_secs(bytes)
    }

    /// One-to-all time: the master exchanges `bytes` with each worker
    /// concurrently; returns the slowest leg (Eq. (7): the master waits for
    /// all workers).
    pub fn one_to_all_time(&self, master: DeviceId, per_worker_bytes: &[(DeviceId, u64)]) -> f64 {
        per_worker_bytes
            .iter()
            .map(|&(w, b)| self.transfer_time(master, w, b))
            .fold(0.0, f64::max)
    }

    /// All-to-all transfer time, modelled as the classic pairwise-exchange
    /// algorithm used for large messages on TCP clusters: `N − 1`
    /// sequential rounds, where round `r` pairs device `d` with
    /// `(d + r) mod N` and the round lasts as long as its slowest
    /// exchange. This is what makes EP's collective slower than VELA's
    /// independent one-to-all legs despite similar byte counts — the
    /// effect the paper measures in Fig. 6.
    pub fn all_to_all_time(&self, per_pair_bytes: &[(DeviceId, DeviceId, u64)]) -> f64 {
        // Collect the participating devices (ordered, deduplicated).
        let mut devices: Vec<DeviceId> = per_pair_bytes
            .iter()
            .flat_map(|&(s, d, _)| [s, d])
            .collect();
        devices.sort_unstable();
        devices.dedup();
        let n = devices.len();
        if n < 2 {
            return 0.0;
        }
        let index = |id: DeviceId| devices.iter().position(|&d| d == id).expect("listed");
        // Bytes per ordered pair.
        let mut bytes = vec![vec![0u64; n]; n];
        for &(s, d, b) in per_pair_bytes {
            bytes[index(s)][index(d)] += b;
        }
        let mut total = 0.0;
        for round in 1..n {
            let mut round_time = 0.0f64;
            for src in 0..n {
                let dst = (src + round) % n;
                round_time =
                    round_time.max(self.transfer_time(devices[src], devices[dst], bytes[src][dst]));
            }
            total += round_time;
        }
        total
    }

    /// The status-synchronization round preceding an all-to-all among
    /// `devices`: every device exchanges token counts with every other
    /// (tiny payload, latency-bound) plus fixed software overhead.
    pub fn all_to_all_sync_time(&self, devices: &[DeviceId]) -> f64 {
        let max_latency = devices
            .iter()
            .flat_map(|&a| devices.iter().map(move |&b| self.topology.latency(a, b)))
            .fold(0.0, f64::max);
        // Counts out + barrier back.
        2.0 * max_latency + self.sync_software_overhead_s
    }

    /// Ring all-reduce time for `bytes` of gradients across `devices`
    /// (2·(N−1)/N · bytes through the slowest link, plus 2·(N−1) latency
    /// hops).
    ///
    /// # Panics
    /// Panics if fewer than two devices participate.
    pub fn allreduce_time(&self, devices: &[DeviceId], bytes: u64) -> f64 {
        assert!(devices.len() >= 2, "all-reduce needs at least two devices");
        let n = devices.len() as f64;
        // Slowest link on the ring (consecutive pairs, wrapping).
        let mut min_bw = f64::INFINITY;
        let mut max_lat = 0.0f64;
        for i in 0..devices.len() {
            let a = devices[i];
            let b = devices[(i + 1) % devices.len()];
            min_bw = min_bw.min(self.topology.bandwidth(a, b).bytes_per_sec());
            max_lat = max_lat.max(self.topology.latency(a, b));
        }
        2.0 * (n - 1.0) / n * bytes as f64 / min_bw + 2.0 * (n - 1.0) * max_lat
    }

    /// Compute time for `flops` on `device`.
    pub fn compute_time(&self, device: DeviceId, flops: f64) -> f64 {
        flops / self.topology.device(device).flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(Topology::paper_testbed())
    }

    #[test]
    fn transfer_time_components() {
        let m = model();
        let bytes = 1_170_000_000; // exactly 1 s of inter-node serialization
        let t = m.transfer_time(DeviceId(0), DeviceId(2), bytes);
        assert!((t - (1.0 + 100e-6)).abs() < 1e-6);
        assert_eq!(m.transfer_time(DeviceId(0), DeviceId(0), bytes), 0.0);
    }

    #[test]
    fn intra_node_is_much_faster() {
        let m = model();
        let bytes = 100 << 20;
        let intra = m.transfer_time(DeviceId(0), DeviceId(1), bytes);
        let inter = m.transfer_time(DeviceId(0), DeviceId(2), bytes);
        assert!(inter > 10.0 * intra, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn one_to_all_takes_the_max_leg() {
        let m = model();
        // Same bytes to a local and a remote worker: remote dominates.
        let t = m.one_to_all_time(
            DeviceId(0),
            &[(DeviceId(1), 1 << 20), (DeviceId(2), 1 << 20)],
        );
        assert!((t - m.transfer_time(DeviceId(0), DeviceId(2), 1 << 20)).abs() < 1e-12);
        // Moving the hot bytes to the local worker reduces the time.
        let t2 = m.one_to_all_time(
            DeviceId(0),
            &[(DeviceId(1), 1 << 22), (DeviceId(2), 1 << 18)],
        );
        assert!(t2 < t);
    }

    #[test]
    fn all_to_all_sync_is_latency_plus_overhead() {
        let m = model();
        let devs: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let t = m.all_to_all_sync_time(&devs);
        assert!((t - (2.0 * 100e-6 + 2e-3)).abs() < 1e-9);
        // All devices on one node: cheaper sync.
        let local: Vec<DeviceId> = vec![DeviceId(0), DeviceId(1)];
        assert!(m.all_to_all_sync_time(&local) < t);
    }

    #[test]
    fn allreduce_scales_with_bytes() {
        let m = model();
        let devs: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let t1 = m.allreduce_time(&devs, 1 << 20);
        let t2 = m.allreduce_time(&devs, 1 << 24);
        assert!(t2 > t1 * 5.0, "t1 {t1} t2 {t2}");
        // Asymptotically 16x more bytes cost ~16x more time.
        let big1 = m.allreduce_time(&devs, 1 << 28);
        let big2 = m.allreduce_time(&devs, 1 << 32);
        assert!((big2 / big1 - 16.0).abs() < 0.5);
    }

    #[test]
    fn compute_time_uses_device_flops() {
        let m = model();
        let t = m.compute_time(DeviceId(0), 1.0e14);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn custom_sync_overhead() {
        let m = model().with_sync_overhead(0.0);
        let devs = vec![DeviceId(0), DeviceId(2)];
        assert!((m.all_to_all_sync_time(&devs) - 2.0 * 100e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two devices")]
    fn allreduce_single_device_panics() {
        model().allreduce_time(&[DeviceId(0)], 100);
    }
}

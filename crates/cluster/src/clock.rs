//! Virtual time accounting.

use std::fmt;
use std::sync::Mutex;

/// Simulated seconds spent per activity category within a window (usually
/// one fine-tuning step).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Token/gradient transfer time.
    pub comm_s: f64,
    /// Expert + backbone compute time.
    pub compute_s: f64,
    /// Synchronization overhead (e.g. the all-to-all status round of
    /// conventional expert parallelism).
    pub sync_s: f64,
}

impl TimeBreakdown {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.comm_s + self.compute_s + self.sync_s
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            comm_s: self.comm_s + other.comm_s,
            compute_s: self.compute_s + other.compute_s,
            sync_s: self.sync_s + other.sync_s,
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4}s (comm {:.4}s, compute {:.4}s, sync {:.4}s)",
            self.total(),
            self.comm_s,
            self.compute_s,
            self.sync_s
        )
    }
}

/// A thread-safe accumulator of simulated time.
///
/// The distributed runtime's threads advance the clock as they account for
/// transfers and compute; [`VirtualClock::take`] drains the accumulated
/// window (one fine-tuning step in the evaluation).
#[derive(Debug, Default)]
pub struct VirtualClock {
    inner: Mutex<TimeBreakdown>,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Adds communication time.
    pub fn add_comm(&self, secs: f64) {
        self.inner.lock().unwrap().comm_s += secs;
    }

    /// Adds compute time.
    pub fn add_compute(&self, secs: f64) {
        self.inner.lock().unwrap().compute_s += secs;
    }

    /// Adds synchronization time.
    pub fn add_sync(&self, secs: f64) {
        self.inner.lock().unwrap().sync_s += secs;
    }

    /// Current accumulated window.
    pub fn peek(&self) -> TimeBreakdown {
        *self.inner.lock().unwrap()
    }

    /// Drains and returns the accumulated window, resetting to zero.
    pub fn take(&self) -> TimeBreakdown {
        std::mem::take(&mut *self.inner.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_category() {
        let clock = VirtualClock::new();
        clock.add_comm(1.0);
        clock.add_compute(2.0);
        clock.add_sync(0.5);
        clock.add_comm(0.5);
        let t = clock.peek();
        assert_eq!(t.comm_s, 1.5);
        assert_eq!(t.compute_s, 2.0);
        assert_eq!(t.sync_s, 0.5);
        assert_eq!(t.total(), 4.0);
    }

    #[test]
    fn take_resets() {
        let clock = VirtualClock::new();
        clock.add_comm(1.0);
        let first = clock.take();
        assert_eq!(first.total(), 1.0);
        assert_eq!(clock.peek().total(), 0.0);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = TimeBreakdown {
            comm_s: 1.0,
            compute_s: 2.0,
            sync_s: 3.0,
        };
        let b = a.merged(&a);
        assert_eq!(b.total(), 12.0);
    }

    #[test]
    fn display_is_informative() {
        let t = TimeBreakdown {
            comm_s: 0.1,
            compute_s: 0.2,
            sync_s: 0.0,
        };
        let s = t.to_string();
        assert!(s.contains("comm"));
        assert!(s.contains("0.3"));
    }

    #[test]
    fn concurrent_updates() {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add_comm(0.001);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((clock.peek().comm_s - 8.0).abs() < 1e-6);
    }
}

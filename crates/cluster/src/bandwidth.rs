//! Bandwidth as a typed quantity.

use std::fmt;

/// A link bandwidth in bytes per second.
///
/// Newtype so GB/s (the paper's unit) and Gbit/s (iperf's unit) cannot be
/// confused.
///
/// # Example
/// ```
/// use vela_cluster::Bandwidth;
/// let b = Bandwidth::from_gbytes_per_sec(1.17);
/// assert!((b.gbytes_per_sec() - 1.17).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From raw bytes per second.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not positive and finite.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "bandwidth must be positive, got {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// From gigabytes per second (the paper reports 18.3 GB/s intra-node).
    pub fn from_gbytes_per_sec(gb: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gb * 1e9)
    }

    /// From gigabits per second (iperf-style).
    pub fn from_gbits_per_sec(gbit: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gbit * 1e9 / 8.0)
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Gigabytes per second.
    pub fn gbytes_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Seconds to move `bytes` at this bandwidth (excluding latency).
    pub fn transfer_secs(self, bytes: u64) -> f64 {
        bytes as f64 / self.0
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.gbytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Bandwidth::from_gbytes_per_sec(1.0).bytes_per_sec(), 1e9);
        assert_eq!(Bandwidth::from_gbits_per_sec(8.0).bytes_per_sec(), 1e9);
    }

    #[test]
    fn transfer_time() {
        let b = Bandwidth::from_bytes_per_sec(1000.0);
        assert_eq!(b.transfer_secs(2000), 2.0);
        assert_eq!(b.transfer_secs(0), 0.0);
    }

    #[test]
    fn display_in_gb() {
        assert_eq!(
            Bandwidth::from_gbytes_per_sec(18.3).to_string(),
            "18.30 GB/s"
        );
    }

    #[test]
    fn ordering() {
        assert!(Bandwidth::from_gbytes_per_sec(18.3) > Bandwidth::from_gbytes_per_sec(1.17));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bandwidth_panics() {
        Bandwidth::from_bytes_per_sec(0.0);
    }
}

//! Stability of expert selection across fine-tuning steps (Fig. 3(c)).

/// Total-variation distance between two discrete distributions.
///
/// # Panics
/// Panics if the lengths differ.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Drift analysis over a sequence of per-step access-frequency
/// distributions for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// One frequency vector per recorded step.
    steps: Vec<Vec<f64>>,
}

impl StabilityReport {
    /// Builds a report from per-step frequency vectors.
    ///
    /// # Panics
    /// Panics if fewer than two steps are given or the vectors have unequal
    /// lengths.
    pub fn new(steps: Vec<Vec<f64>>) -> Self {
        assert!(steps.len() >= 2, "need at least two steps");
        let n = steps[0].len();
        assert!(
            steps.iter().all(|s| s.len() == n),
            "all steps must cover the same experts"
        );
        StabilityReport { steps }
    }

    /// Number of recorded steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// The per-step frequency series for one expert (the Fig. 3(c) lines).
    ///
    /// # Panics
    /// Panics if `expert` is out of range.
    pub fn expert_series(&self, expert: usize) -> Vec<f64> {
        assert!(expert < self.steps[0].len(), "expert out of range");
        self.steps.iter().map(|s| s[expert]).collect()
    }

    /// Maximum total-variation distance between consecutive steps.
    pub fn max_consecutive_tv(&self) -> f64 {
        self.steps
            .windows(2)
            .map(|w| total_variation(&w[0], &w[1]))
            .fold(0.0, f64::max)
    }

    /// Total-variation distance between the first and last step — the
    /// end-to-end drift of the routing distribution.
    pub fn end_to_end_tv(&self) -> f64 {
        total_variation(self.steps.first().unwrap(), self.steps.last().unwrap())
    }

    /// Whether the experts ranked above/below the median by initial
    /// frequency keep their side at the end (popularity ordering is
    /// preserved — the paper's "popular experts stay popular").
    pub fn popularity_rank_preserved(&self) -> bool {
        let first = &self.steps[0];
        let last = self.steps.last().unwrap();
        let rank = |v: &[f64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        let top_half = v_top_half(&rank(first));
        let top_half_last = v_top_half(&rank(last));
        top_half == top_half_last
    }
}

fn v_top_half(ranked: &[usize]) -> std::collections::BTreeSet<usize> {
    ranked[..ranked.len() / 2].iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_basic_properties() {
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((total_variation(&[0.7, 0.3], &[0.5, 0.5]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stable_series_has_tiny_drift() {
        let steps = vec![vec![0.6, 0.3, 0.1]; 10];
        let r = StabilityReport::new(steps);
        assert_eq!(r.max_consecutive_tv(), 0.0);
        assert_eq!(r.end_to_end_tv(), 0.0);
        assert!(r.popularity_rank_preserved());
        assert_eq!(r.step_count(), 10);
    }

    #[test]
    fn expert_series_extracts_column() {
        let r = StabilityReport::new(vec![vec![0.1, 0.9], vec![0.2, 0.8]]);
        assert_eq!(r.expert_series(0), vec![0.1, 0.2]);
        assert_eq!(r.expert_series(1), vec![0.9, 0.8]);
    }

    #[test]
    fn popularity_flip_detected() {
        let r = StabilityReport::new(vec![vec![0.9, 0.1], vec![0.1, 0.9]]);
        assert!(!r.popularity_rank_preserved());
        assert!((r.end_to_end_tv() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn gentle_concentration_preserves_rank() {
        // Popular experts become slightly MORE popular — the paper's
        // empirical observation — rank must be preserved.
        let r = StabilityReport::new(vec![vec![0.4, 0.3, 0.2, 0.1], vec![0.45, 0.32, 0.15, 0.08]]);
        assert!(r.popularity_rank_preserved());
        assert!(r.end_to_end_tv() < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least two steps")]
    fn single_step_panics() {
        StabilityReport::new(vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn tv_length_mismatch_panics() {
        total_variation(&[1.0], &[0.5, 0.5]);
    }
}

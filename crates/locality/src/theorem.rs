//! Theorem 1: the softmax-stability bound.
//!
//! The paper proves that one SGD step with learning rate `μ` on an
//! `L`-Lipschitz gate changes any expert's softmax score by at most
//!
//! ```text
//! ΔP_t(e) ≤ μ·E·L²·P_{t-1}(e)·(1 − P_{t-1}(e))
//! ```
//!
//! The right-hand side vanishes as `P → 0` or `P → 1`: confident routing
//! decisions are stable, which is the theoretical foundation for exploiting
//! expert locality during fine-tuning. This module implements the bound and
//! utilities to verify it empirically against a fine-tuning run.

/// The Theorem 1 bound `μ·E·L²·p·(1−p)`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]` or the constants are negative.
pub fn drift_bound(p: f64, experts: usize, mu: f64, lipschitz: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    assert!(
        mu >= 0.0 && lipschitz >= 0.0,
        "constants must be nonnegative"
    );
    mu * experts as f64 * lipschitz * lipschitz * p * (1.0 - p)
}

/// The intermediate inequality of the proof, usable with *measured* logit
/// drift instead of the Lipschitz constant: `ΔP(e) ≤ E·p·(1−p)·max_k|Δy_k|`.
///
/// This is the form the empirical harness checks, because on a real run the
/// per-step logit drift `max_k |y_t[k] − y_{t-1}[k]|` is directly
/// observable while `L` is not.
pub fn drift_bound_from_logits(p: f64, experts: usize, max_logit_drift: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    experts as f64 * p * (1.0 - p) * max_logit_drift
}

/// Result of checking the bound over a set of (before, after) softmax rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheck {
    /// Largest observed `ΔP` across all experts and tokens.
    pub max_observed: f64,
    /// Largest bound value across the same set.
    pub max_bound: f64,
    /// Observations violating the (first-order) bound beyond `slack`.
    pub violations: usize,
    /// Total observations checked.
    pub checked: usize,
}

impl BoundCheck {
    /// Fraction of observations within the bound.
    pub fn pass_rate(&self) -> f64 {
        if self.checked == 0 {
            1.0
        } else {
            1.0 - self.violations as f64 / self.checked as f64
        }
    }
}

/// Checks `ΔP(e) ≤ E·p·(1−p)·max|Δy| · (1 + slack)` for every expert of
/// every row.
///
/// `probs_prev`/`probs_next` are per-token softmax rows before/after one
/// optimizer step for the *same inputs*; `logits_prev`/`logits_next`
/// likewise. The `slack` term absorbs the second-order error of the Taylor
/// expansion used in the proof.
///
/// # Panics
/// Panics if the shapes disagree.
pub fn check_bound(
    probs_prev: &[Vec<f64>],
    probs_next: &[Vec<f64>],
    logits_prev: &[Vec<f64>],
    logits_next: &[Vec<f64>],
    slack: f64,
) -> BoundCheck {
    assert_eq!(probs_prev.len(), probs_next.len(), "row count mismatch");
    assert_eq!(probs_prev.len(), logits_prev.len(), "row count mismatch");
    assert_eq!(probs_prev.len(), logits_next.len(), "row count mismatch");

    let mut max_observed = 0.0f64;
    let mut max_bound = 0.0f64;
    let mut violations = 0;
    let mut checked = 0;
    for t in 0..probs_prev.len() {
        let experts = probs_prev[t].len();
        assert_eq!(probs_next[t].len(), experts, "expert count mismatch");
        let drift = logits_prev[t]
            .iter()
            .zip(&logits_next[t])
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        for e in 0..experts {
            let observed = (probs_prev[t][e] - probs_next[t][e]).abs();
            let bound = drift_bound_from_logits(probs_prev[t][e], experts, drift);
            max_observed = max_observed.max(observed);
            max_bound = max_bound.max(bound);
            if observed > bound * (1.0 + slack) + 1e-9 {
                violations += 1;
            }
            checked += 1;
        }
    }
    BoundCheck {
        max_observed,
        max_bound,
        violations,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_vanishes_at_extremes() {
        assert_eq!(drift_bound(0.0, 8, 0.1, 1.0), 0.0);
        assert_eq!(drift_bound(1.0, 8, 0.1, 1.0), 0.0);
        assert!(drift_bound(0.5, 8, 0.1, 1.0) > drift_bound(0.9, 8, 0.1, 1.0));
    }

    #[test]
    fn bound_is_maximal_at_half() {
        let values: Vec<f64> = (1..100)
            .map(|i| drift_bound(i as f64 / 100.0, 4, 0.01, 2.0))
            .collect();
        let max_idx = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx + 1, 50);
    }

    #[test]
    fn bound_scales_linearly_in_mu_and_e() {
        let b1 = drift_bound(0.3, 4, 0.01, 1.5);
        assert!((drift_bound(0.3, 4, 0.02, 1.5) - 2.0 * b1).abs() < 1e-12);
        assert!((drift_bound(0.3, 8, 0.01, 1.5) - 2.0 * b1).abs() < 1e-12);
    }

    fn softmax(v: &[f64]) -> Vec<f64> {
        let m = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = v.iter().map(|x| (x - m).exp()).collect();
        let s: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / s).collect()
    }

    #[test]
    fn check_bound_holds_for_small_perturbations() {
        // Random logits, tiny perturbation: the first-order bound must hold.
        let mut rows_prev = Vec::new();
        let mut rows_next = Vec::new();
        let mut lp = Vec::new();
        let mut ln = Vec::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / u32::MAX as f64) * 4.0 - 2.0
        };
        for _ in 0..50 {
            let logits: Vec<f64> = (0..6).map(|_| next()).collect();
            let perturbed: Vec<f64> = logits.iter().map(|&x| x + 1e-4 * next()).collect();
            rows_prev.push(softmax(&logits));
            rows_next.push(softmax(&perturbed));
            lp.push(logits);
            ln.push(perturbed);
        }
        let check = check_bound(&rows_prev, &rows_next, &lp, &ln, 0.05);
        assert_eq!(check.violations, 0, "{check:?}");
        assert_eq!(check.checked, 300);
        assert!(check.pass_rate() == 1.0);
        assert!(check.max_observed <= check.max_bound * 1.05 + 1e-9);
    }

    #[test]
    fn check_bound_detects_fabricated_violation() {
        // Probabilities jump massively while logits "claim" zero drift.
        let probs_prev = vec![vec![0.9, 0.1]];
        let probs_next = vec![vec![0.1, 0.9]];
        let logits = vec![vec![0.0, 0.0]];
        let check = check_bound(&probs_prev, &probs_next, &logits, &logits, 0.0);
        assert_eq!(check.violations, 2);
        assert!(check.pass_rate() < 1.0);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_probability_panics() {
        drift_bound(1.5, 4, 0.1, 1.0);
    }
}

//! Expert-locality measurement toolkit.
//!
//! This crate implements the measurement side of the paper's §III:
//!
//! * [`AccessTracker`] — per-block, per-expert access counters fed from the
//!   model's routing snapshots (Fig. 3(a), Fig. 7 heatmaps);
//! * [`Cdf`] — empirical CDFs of selected-expert softmax scores
//!   (Fig. 3(b));
//! * [`stability`] — drift metrics across fine-tuning steps (Fig. 3(c));
//! * [`theorem`] — the Theorem 1 softmax-stability bound and its empirical
//!   verification;
//! * [`LocalityProfile`] — measured (or synthetic) access-probability
//!   matrices, the `P ∈ R^{L×E}` that drives VELA's placement LP and the
//!   scale-virtual routing in the evaluation.

pub mod cdf;
pub mod counter;
pub mod drift;
pub mod profile;
pub mod stability;
pub mod theorem;

pub use cdf::Cdf;
pub use counter::AccessTracker;
pub use drift::DriftDetector;
pub use profile::LocalityProfile;
pub use stability::StabilityReport;

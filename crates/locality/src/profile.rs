//! Locality profiles: the access-probability matrix `P ∈ R^{L×E}`.
//!
//! The paper measures `P` by passing the fine-tuning dataset through the
//! pre-trained model once (§IV-B) and feeds it to the placement LP. Here a
//! [`LocalityProfile`] is either *measured* from a micro-model run or
//! generated *synthetically* (Zipf-skewed) for ablations; the scale-virtual
//! evaluation replays a measured micro profile at Mixtral dimensions via
//! [`LocalityProfile::upscale`].

use vela_tensor::rng::DetRng;

/// A per-block expert access-probability matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityProfile {
    name: String,
    /// `blocks × experts`, each row sums to 1.
    probs: Vec<Vec<f64>>,
}

impl LocalityProfile {
    /// Builds a profile from measured frequencies, smoothing zeros with a
    /// small floor and renormalizing.
    ///
    /// # Panics
    /// Panics if `rows` is empty, ragged, or a row sums to zero.
    pub fn from_frequencies(name: impl Into<String>, rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "profile needs at least one block");
        let experts = rows[0].len();
        assert!(experts > 0, "profile needs at least one expert");
        let floor = 1e-4;
        let probs = rows
            .into_iter()
            .map(|row| {
                assert_eq!(row.len(), experts, "ragged frequency rows");
                let sum: f64 = row.iter().sum();
                assert!(sum > 0.0, "frequency row sums to zero");
                let smoothed: Vec<f64> = row.iter().map(|&p| p / sum + floor).collect();
                let total: f64 = smoothed.iter().sum();
                smoothed.into_iter().map(|p| p / total).collect()
            })
            .collect();
        LocalityProfile {
            name: name.into(),
            probs,
        }
    }

    /// A synthetic Zipf-skewed profile: within each block, expert ranks are
    /// randomly permuted and given probability `∝ 1/rank^s`.
    ///
    /// `s = 0` is uniform; larger `s` concentrates access — the knob used
    /// by the skew ablation.
    pub fn synthetic(
        name: impl Into<String>,
        blocks: usize,
        experts: usize,
        zipf_s: f64,
        seed: u64,
    ) -> Self {
        assert!(blocks > 0 && experts > 0, "shape must be positive");
        let mut rng = DetRng::new(seed);
        let mut probs = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            let perm = rng.permutation(experts);
            let mut row = vec![0.0f64; experts];
            let mut total = 0.0;
            for (rank, &e) in perm.iter().enumerate() {
                let w = 1.0 / ((rank + 1) as f64).powf(zipf_s);
                row[e] = w;
                total += w;
            }
            for v in &mut row {
                *v /= total;
            }
            probs.push(row);
        }
        LocalityProfile {
            name: name.into(),
            probs,
        }
    }

    /// The profile's name (dataset/model tag used in harness output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.probs.len()
    }

    /// Experts per block.
    pub fn experts(&self) -> usize {
        self.probs[0].len()
    }

    /// The probability row for one block.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn row(&self, block: usize) -> &[f64] {
        &self.probs[block]
    }

    /// The probability of expert `e` in block `l`.
    pub fn prob(&self, block: usize, expert: usize) -> f64 {
        self.probs[block][expert]
    }

    /// The full matrix, cloned.
    pub fn to_matrix(&self) -> Vec<Vec<f64>> {
        self.probs.clone()
    }

    /// Replays this profile at a larger model shape: target blocks cycle
    /// through source blocks with a fresh expert permutation per target
    /// block (so hot experts land at different indices per layer, like
    /// Fig. 7).
    ///
    /// # Panics
    /// Panics if the expert counts differ.
    pub fn upscale(&self, blocks: usize, experts: usize, seed: u64) -> LocalityProfile {
        assert_eq!(
            experts,
            self.experts(),
            "upscale keeps the expert count ({} != {})",
            experts,
            self.experts()
        );
        let mut rng = DetRng::new(seed);
        let mut probs = Vec::with_capacity(blocks);
        for l in 0..blocks {
            let src = &self.probs[l % self.blocks()];
            let perm = rng.permutation(experts);
            let mut row = vec![0.0f64; experts];
            for (i, &p) in perm.iter().enumerate() {
                row[p] = src[i];
            }
            probs.push(row);
        }
        LocalityProfile {
            name: format!("{}-upscaled", self.name),
            probs,
        }
    }

    /// Samples `k` distinct experts for one token of `block`, proportional
    /// to the profile probabilities (weighted sampling without
    /// replacement).
    ///
    /// # Panics
    /// Panics if `k > experts`.
    pub fn sample_topk(&self, block: usize, k: usize, rng: &mut DetRng) -> Vec<usize> {
        let experts = self.experts();
        assert!(k <= experts, "k {k} > experts {experts}");
        let mut weights: Vec<f32> = self.probs[block].iter().map(|&p| p as f32).collect();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let e = rng.categorical(&weights);
            out.push(e);
            weights[e] = 0.0;
        }
        out
    }

    /// Concentration of one block's distribution: `1 − H(p)/log(E)`
    /// (0 = uniform, → 1 = single expert).
    pub fn concentration(&self, block: usize) -> f64 {
        let row = &self.probs[block];
        let e = row.len() as f64;
        if row.len() < 2 {
            return 1.0;
        }
        let h: f64 = row.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum();
        1.0 - h / e.ln()
    }

    /// Mean concentration across blocks.
    pub fn mean_concentration(&self) -> f64 {
        (0..self.blocks())
            .map(|l| self.concentration(l))
            .sum::<f64>()
            / self.blocks() as f64
    }

    /// Sharpens the profile in place: popular experts become slightly more
    /// popular (`p ← p^{1+rate}`, renormalized). Models the drift the paper
    /// observes in Fig. 3(c)/Fig. 5(a).
    ///
    /// # Panics
    /// Panics if `rate` is negative.
    pub fn sharpen(&mut self, rate: f64) {
        assert!(rate >= 0.0, "sharpen rate must be nonnegative");
        for row in &mut self.probs {
            for p in row.iter_mut() {
                *p = p.powf(1.0 + rate);
            }
            let total: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let p = LocalityProfile::synthetic("s", 4, 6, 1.2, 7);
        for l in 0..4 {
            let s: f64 = p.row(l).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert_eq!(p.blocks(), 4);
        assert_eq!(p.experts(), 6);
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let p = LocalityProfile::synthetic("u", 2, 5, 0.0, 1);
        for l in 0..2 {
            for e in 0..5 {
                assert!((p.prob(l, e) - 0.2).abs() < 1e-9);
            }
        }
        assert!(p.mean_concentration() < 1e-9);
    }

    #[test]
    fn higher_skew_means_higher_concentration() {
        let flat = LocalityProfile::synthetic("a", 8, 8, 0.3, 2);
        let sharp = LocalityProfile::synthetic("b", 8, 8, 2.0, 2);
        assert!(sharp.mean_concentration() > flat.mean_concentration() + 0.1);
    }

    #[test]
    fn from_frequencies_smooths_and_normalizes() {
        let p = LocalityProfile::from_frequencies("m", vec![vec![2.0, 0.0, 2.0]]);
        let row = p.row(0);
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(row[1] > 0.0, "zero entries get a floor");
        assert!(row[0] > 0.4 && row[0] < 0.51);
    }

    #[test]
    fn upscale_cycles_blocks_and_permutes() {
        let p = LocalityProfile::synthetic("s", 3, 4, 1.0, 5);
        let up = p.upscale(12, 4, 9);
        assert_eq!(up.blocks(), 12);
        assert_eq!(up.experts(), 4);
        for l in 0..12 {
            let mut sorted_up: Vec<f64> = up.row(l).to_vec();
            let mut sorted_src: Vec<f64> = p.row(l % 3).to_vec();
            sorted_up.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted_src.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (a, b) in sorted_up.iter().zip(&sorted_src) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "upscale preserves each row's multiset"
                );
            }
        }
    }

    #[test]
    fn sample_topk_returns_distinct_and_respects_skew() {
        let p = LocalityProfile::synthetic("s", 1, 6, 2.0, 3);
        let mut rng = DetRng::new(1);
        let mut counts = [0usize; 6];
        for _ in 0..5_000 {
            let picks = p.sample_topk(0, 2, &mut rng);
            assert_eq!(picks.len(), 2);
            assert_ne!(picks[0], picks[1]);
            for e in picks {
                counts[e] += 1;
            }
        }
        // The most probable expert should dominate counts.
        let best = (0..6).max_by(|&a, &b| p.prob(0, a).partial_cmp(&p.prob(0, b)).unwrap());
        let max_count = counts.iter().max().unwrap();
        assert_eq!(counts.iter().position(|c| c == max_count), best);
    }

    #[test]
    fn sharpen_increases_concentration() {
        let mut p = LocalityProfile::synthetic("s", 4, 6, 1.0, 4);
        let before = p.mean_concentration();
        p.sharpen(0.2);
        assert!(p.mean_concentration() > before);
        for l in 0..4 {
            assert!((p.row(l).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "keeps the expert count")]
    fn upscale_rejects_expert_change() {
        LocalityProfile::synthetic("s", 2, 4, 1.0, 1).upscale(8, 6, 2);
    }

    #[test]
    #[should_panic(expected = "row sums to zero")]
    fn zero_row_panics() {
        LocalityProfile::from_frequencies("m", vec![vec![0.0, 0.0]]);
    }
}

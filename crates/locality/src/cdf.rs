//! Empirical cumulative distribution functions.

/// An empirical CDF over `f32` samples (used for the Fig. 3(b) analysis of
/// selected-expert softmax scores).
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f32>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(mut samples: Vec<f32>) -> Self {
        assert!(!samples.is_empty(), "CDF needs at least one sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF has no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn fraction_at_or_below(&self, x: f32) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)`.
    pub fn fraction_above(&self, x: f32) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`, nearest-rank).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f32 {
        assert!((0.0..=1.0).contains(&q), "quantile q out of [0,1]");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Minimum sample.
    pub fn min(&self) -> f32 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f32 {
        *self.sorted.last().expect("nonempty")
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().map(|&x| x as f64).sum::<f64>() / self.sorted.len() as f64
    }

    /// Evenly spaced `(value, cumulative_fraction)` points for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f32, f64)> {
        let n = points.max(2);
        (0..n)
            .map(|i| {
                let idx = i * (self.sorted.len() - 1) / (n - 1);
                (
                    self.sorted[idx],
                    (idx + 1) as f64 / self.sorted.len() as f64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let cdf = Cdf::from_samples(vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.fraction_at_or_below(0.3) - 0.6).abs() < 1e-12);
        assert!((cdf.fraction_above(0.3) - 0.4).abs() < 1e-12);
        assert_eq!(cdf.quantile(0.0), 0.1);
        assert_eq!(cdf.quantile(1.0), 0.5);
        assert_eq!(cdf.quantile(0.5), 0.3);
        assert_eq!(cdf.min(), 0.1);
        assert_eq!(cdf.max(), 0.5);
        assert!((cdf.mean() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let cdf = Cdf::from_samples(vec![0.5, 0.1, 0.3]);
        assert_eq!(cdf.min(), 0.1);
        assert_eq!(cdf.max(), 0.5);
    }

    #[test]
    fn curve_is_monotone() {
        let samples: Vec<f32> = (0..100).map(|i| (i as f32) / 100.0).collect();
        let cdf = Cdf::from_samples(samples);
        let curve = cdf.curve(10);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_fraction() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0]);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(5.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_panics() {
        Cdf::from_samples(Vec::new());
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_panics() {
        Cdf::from_samples(vec![f32::NAN]);
    }
}

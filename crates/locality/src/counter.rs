//! Per-expert access counters.

use vela_model::RoutingInfo;

/// Accumulates expert-access counts across batches.
///
/// Feed it one [`RoutingInfo`] per block after each forward pass (from
/// [`MoeModel::routing_snapshot`](vela_model::MoeModel::routing_snapshot));
/// frequencies are the Fig. 3(a)/Fig. 7 quantity: the fraction of
/// (token, slot) assignments each expert received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessTracker {
    counts: Vec<Vec<u64>>,
    assignments: Vec<u64>,
}

impl AccessTracker {
    /// Creates a tracker for `blocks × experts` counters.
    pub fn new(blocks: usize, experts: usize) -> Self {
        AccessTracker {
            counts: vec![vec![0; experts]; blocks],
            assignments: vec![0; blocks],
        }
    }

    /// Number of blocks tracked.
    pub fn blocks(&self) -> usize {
        self.counts.len()
    }

    /// Number of experts per block.
    pub fn experts(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Records one forward pass's routing decisions (one entry per block).
    ///
    /// # Panics
    /// Panics if the snapshot's block count or expert count disagrees with
    /// the tracker.
    pub fn record(&mut self, snapshot: &[RoutingInfo]) {
        assert_eq!(snapshot.len(), self.counts.len(), "block count mismatch");
        for (l, info) in snapshot.iter().enumerate() {
            assert_eq!(info.counts.len(), self.experts(), "expert count mismatch");
            for (e, &c) in info.counts.iter().enumerate() {
                self.counts[l][e] += c as u64;
            }
            self.assignments[l] += (info.tokens * info.k) as u64;
        }
    }

    /// Raw counts for one block.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn counts(&self, block: usize) -> &[u64] {
        &self.counts[block]
    }

    /// Access frequencies for one block (sums to 1 once anything was
    /// recorded).
    pub fn frequencies(&self, block: usize) -> Vec<f64> {
        let total = self.assignments[block].max(1) as f64;
        self.counts[block]
            .iter()
            .map(|&c| c as f64 / total)
            .collect()
    }

    /// The full `blocks × experts` frequency matrix.
    pub fn frequency_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.blocks()).map(|l| self.frequencies(l)).collect()
    }

    /// Merges another tracker's counts into this one.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &AccessTracker) {
        assert_eq!(self.blocks(), other.blocks(), "block count mismatch");
        assert_eq!(self.experts(), other.experts(), "expert count mismatch");
        for l in 0..self.blocks() {
            for e in 0..self.experts() {
                self.counts[l][e] += other.counts[l][e];
            }
            self.assignments[l] += other.assignments[l];
        }
    }

    /// Largest single-expert share in a block — a quick concentration
    /// indicator.
    pub fn peak_share(&self, block: usize) -> f64 {
        self.frequencies(block).into_iter().fold(0.0f64, f64::max)
    }

    /// Serializes the per-`(block, expert)` access histogram as JSON —
    /// the `results/expert_access.json` artifact. Raw counts are exact;
    /// frequencies are rounded to six decimals for a stable, diffable
    /// file. This is the Fig. 3 measurement that drives the replication
    /// cost model's degree choices (`VELA_REPLICATION`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"blocks\": {},\n", self.blocks()));
        out.push_str(&format!("  \"experts\": {},\n", self.experts()));
        out.push_str("  \"access\": [\n");
        for l in 0..self.blocks() {
            let counts: Vec<String> = self.counts[l].iter().map(u64::to_string).collect();
            let freqs: Vec<String> = self
                .frequencies(l)
                .iter()
                .map(|f| format!("{f:.6}"))
                .collect();
            out.push_str(&format!(
                "    {{\"block\": {l}, \"assignments\": {}, \"counts\": [{}], \"frequencies\": [{}]}}{}\n",
                self.assignments[l],
                counts.join(", "),
                freqs.join(", "),
                if l + 1 == self.blocks() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(counts: Vec<usize>, tokens: usize, k: usize) -> RoutingInfo {
        RoutingInfo {
            selected: Vec::new(),
            selected_probs: Vec::new(),
            counts,
            tokens,
            k,
            dropped: 0,
        }
    }

    #[test]
    fn frequencies_normalize_to_one() {
        let mut t = AccessTracker::new(2, 3);
        t.record(&[info(vec![4, 2, 2], 4, 2), info(vec![8, 0, 0], 4, 2)]);
        let f0 = t.frequencies(0);
        assert!((f0.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f0, vec![0.5, 0.25, 0.25]);
        assert_eq!(t.frequencies(1), vec![1.0, 0.0, 0.0]);
        assert_eq!(t.peak_share(1), 1.0);
    }

    #[test]
    fn record_accumulates_over_batches() {
        let mut t = AccessTracker::new(1, 2);
        t.record(&[info(vec![2, 0], 1, 2)]);
        t.record(&[info(vec![0, 2], 1, 2)]);
        assert_eq!(t.counts(0), &[2, 2]);
        assert_eq!(t.frequencies(0), vec![0.5, 0.5]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = AccessTracker::new(1, 2);
        a.record(&[info(vec![2, 0], 1, 2)]);
        let mut b = AccessTracker::new(1, 2);
        b.record(&[info(vec![0, 2], 1, 2)]);
        a.merge(&b);
        assert_eq!(a.frequencies(0), vec![0.5, 0.5]);
    }

    #[test]
    fn frequency_matrix_shape() {
        let t = AccessTracker::new(3, 4);
        let m = t.frequency_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].len(), 4);
        assert_eq!(t.blocks(), 3);
        assert_eq!(t.experts(), 4);
    }

    #[test]
    fn json_export_carries_counts_and_frequencies() {
        let mut t = AccessTracker::new(2, 3);
        t.record(&[info(vec![4, 2, 2], 4, 2), info(vec![8, 0, 0], 4, 2)]);
        let json = t.to_json();
        assert!(json.contains("\"blocks\": 2"));
        assert!(json.contains("\"experts\": 3"));
        assert!(json.contains("\"block\": 0, \"assignments\": 8, \"counts\": [4, 2, 2]"));
        assert!(json.contains("\"frequencies\": [0.500000, 0.250000, 0.250000]"));
        assert!(json.contains("\"counts\": [8, 0, 0]"));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The last array element must not have a trailing comma.
        assert!(!json.contains("},\n  ]"));
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn wrong_snapshot_size_panics() {
        AccessTracker::new(2, 2).record(&[info(vec![0, 0], 0, 2)]);
    }
}

//! Online routing-drift detection.
//!
//! Theorem 1 guarantees routing stays *nearly* stable during fine-tuning —
//! but "nearly" accumulates, and a placement computed from a pre-run
//! profile slowly ages. [`DriftDetector`] watches live routing snapshots,
//! maintains an exponentially smoothed total-variation distance to the
//! reference profile, and signals when a re-placement would pay off. It is
//! the measurement half of the dynamic re-placement extension (the
//! migration half lives in the runtime).

use vela_model::RoutingInfo;

use crate::profile::LocalityProfile;
use crate::stability::total_variation;

/// Watches routing snapshots for drift away from a reference profile.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    reference: LocalityProfile,
    /// EMA smoothing factor in `(0, 1]` (1 = no smoothing).
    alpha: f64,
    /// Re-plan once the smoothed drift exceeds this TV distance.
    threshold: f64,
    smoothed: f64,
    observations: usize,
}

impl DriftDetector {
    /// Creates a detector against `reference` that trips at a smoothed
    /// mean-TV distance of `threshold`.
    ///
    /// # Panics
    /// Panics if `threshold` is not positive.
    pub fn new(reference: LocalityProfile, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        DriftDetector {
            reference,
            alpha: 0.2,
            threshold,
            smoothed: 0.0,
            observations: 0,
        }
    }

    /// Overrides the EMA smoothing factor.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_smoothing(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// The reference profile drift is measured against.
    pub fn reference(&self) -> &LocalityProfile {
        &self.reference
    }

    /// The current smoothed drift (mean TV distance across blocks).
    pub fn drift(&self) -> f64 {
        self.smoothed
    }

    /// Number of snapshots observed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Ingests one step's routing snapshot (one [`RoutingInfo`] per block)
    /// and returns the updated smoothed drift.
    ///
    /// # Panics
    /// Panics if the snapshot's shape disagrees with the reference.
    pub fn observe(&mut self, snapshot: &[RoutingInfo]) -> f64 {
        assert_eq!(
            snapshot.len(),
            self.reference.blocks(),
            "snapshot block count mismatch"
        );
        let mut total = 0.0;
        for (l, info) in snapshot.iter().enumerate() {
            let freqs: Vec<f64> = info.frequencies().iter().map(|&f| f as f64).collect();
            assert_eq!(
                freqs.len(),
                self.reference.experts(),
                "snapshot expert count mismatch"
            );
            total += total_variation(&freqs, self.reference.row(l));
        }
        let mean_tv = total / snapshot.len() as f64;
        self.smoothed = if self.observations == 0 {
            mean_tv
        } else {
            self.alpha * mean_tv + (1.0 - self.alpha) * self.smoothed
        };
        self.observations += 1;
        self.smoothed
    }

    /// Whether the smoothed drift has crossed the re-plan threshold.
    pub fn should_replan(&self) -> bool {
        self.observations > 0 && self.smoothed > self.threshold
    }

    /// Re-baselines the detector after a re-placement: the new reference
    /// becomes `profile` and the smoothed drift resets.
    pub fn rebaseline(&mut self, profile: LocalityProfile) {
        self.reference = profile;
        self.smoothed = 0.0;
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(freqs: Vec<Vec<f64>>, tokens: usize) -> Vec<RoutingInfo> {
        freqs
            .into_iter()
            .map(|f| {
                let k = 2;
                let counts: Vec<usize> = f
                    .iter()
                    .map(|&p| (p * (tokens * k) as f64).round() as usize)
                    .collect();
                RoutingInfo {
                    selected: Vec::new(),
                    selected_probs: Vec::new(),
                    counts,
                    tokens,
                    k,
                    dropped: 0,
                }
            })
            .collect()
    }

    fn reference() -> LocalityProfile {
        LocalityProfile::from_frequencies("ref", vec![vec![0.5, 0.3, 0.2], vec![0.4, 0.4, 0.2]])
    }

    #[test]
    fn matching_routing_reports_no_drift() {
        let mut d = DriftDetector::new(reference(), 0.1);
        let snap = snapshot(vec![vec![0.5, 0.3, 0.2], vec![0.4, 0.4, 0.2]], 100);
        let drift = d.observe(&snap);
        assert!(drift < 0.01, "drift {drift}");
        assert!(!d.should_replan());
        assert_eq!(d.observations(), 1);
    }

    #[test]
    fn migrated_routing_trips_the_detector() {
        let mut d = DriftDetector::new(reference(), 0.1).with_smoothing(1.0);
        let snap = snapshot(vec![vec![0.1, 0.2, 0.7], vec![0.1, 0.2, 0.7]], 100);
        d.observe(&snap);
        assert!(d.should_replan(), "drift {}", d.drift());
    }

    #[test]
    fn smoothing_damps_single_outliers() {
        let mut d = DriftDetector::new(reference(), 0.3).with_smoothing(0.1);
        // One wild snapshot after many calm ones barely moves the EMA.
        let calm = snapshot(vec![vec![0.5, 0.3, 0.2], vec![0.4, 0.4, 0.2]], 100);
        for _ in 0..10 {
            d.observe(&calm);
        }
        let wild = snapshot(vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]], 100);
        d.observe(&wild);
        assert!(
            !d.should_replan(),
            "one outlier must not trip: {}",
            d.drift()
        );
        // Sustained drift eventually does.
        for _ in 0..30 {
            d.observe(&wild);
        }
        assert!(d.should_replan());
    }

    #[test]
    fn rebaseline_resets() {
        let mut d = DriftDetector::new(reference(), 0.1).with_smoothing(1.0);
        let wild = snapshot(vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]], 100);
        d.observe(&wild);
        assert!(d.should_replan());
        d.rebaseline(LocalityProfile::from_frequencies(
            "new",
            vec![vec![0.0001, 0.0001, 1.0], vec![0.0001, 0.0001, 1.0]],
        ));
        assert!(!d.should_replan());
        assert_eq!(d.observations(), 0);
        let drift = d.observe(&wild);
        assert!(drift < 0.02, "rebaselined drift {drift}");
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        DriftDetector::new(reference(), 0.0);
    }
}

//! Mixture-of-Experts transformer: backbone, router, experts, pre-training
//! and fine-tuning.
//!
//! This crate implements the model side of the VELA reproduction:
//!
//! * a Mistral-style decoder-only transformer whose FFNs are replaced by
//!   MoE blocks ([`MoeBlock`]) with top-k softmax gating ([`Router`]);
//! * the **Expert Broker seam** ([`ExpertProvider`]): the backbone never
//!   owns expert weights — every expert evaluation goes through a provider,
//!   which is a [`LocalExpertStore`] in single-process runs and a network
//!   broker in the distributed runtime;
//! * [`pretrain`](pretrain::pretrain): balanced pre-training with the
//!   load-balancing auxiliary loss, which is how expert specialisation (and
//!   therefore expert locality) *emerges* in this reproduction;
//! * [`finetune`]: LoRA fine-tuning preparation matching the
//!   paper's setup (all linear layers except the gate, `r = 8`, `α = 16`).
//!
//! # Example
//!
//! ```
//! use vela_model::{MoeModel, ModelConfig, LocalExpertStore};
//! use vela_tensor::rng::DetRng;
//!
//! let cfg = ModelConfig::test_small();
//! let mut rng = DetRng::new(0);
//! let (mut model, mut experts) = MoeModel::new(&cfg, &mut rng);
//! let tokens = vec![1usize; cfg.seq_len * 2];
//! let logits = model.forward(&tokens, 2, cfg.seq_len, &mut experts);
//! assert_eq!(logits.rows(), tokens.len());
//! ```

pub mod checkpoint;
pub mod config;
pub mod finetune;
pub mod model;
pub mod moe_block;
pub mod pretrain;
pub mod provider;
pub mod router;

pub use config::{ModelConfig, MoeSpec};
pub use model::{MoeModel, StepStats};
pub use moe_block::{MoeBlock, RoutingInfo};
pub use provider::{ExpertProvider, LocalExpertStore};
pub use router::{Router, RouterOutput};

//! The gating mechanism: a softmax classifier with top-k expert selection.
//!
//! Following the paper (and Shen et al.), the gate's parameters are **frozen
//! during fine-tuning** — fine-tuning the gate degrades the pre-trained
//! routing — but gradients still flow *through* the gate to earlier layers,
//! and the expert-mixture weights still shape expert gradients. The backward
//! pass here implements that faithfully.

use vela_nn::linear::Linear;
use vela_nn::param::{Module, Param};
use vela_tensor::rng::DetRng;
use vela_tensor::{ops, Tensor};

/// The routing decision for one batch of tokens.
#[derive(Debug, Clone)]
pub struct RouterOutput {
    /// Full softmax over experts, `[tokens, experts]`.
    pub probs: Tensor,
    /// Selected expert ids, row-major `[tokens · k]`.
    pub selected: Vec<usize>,
    /// Raw softmax scores of the selected experts, `[tokens · k]`.
    pub selected_probs: Vec<f32>,
    /// Mixture weights (selected scores renormalized per token per Eq. (1)),
    /// `[tokens · k]`.
    pub weights: Vec<f32>,
    /// Experts selected per token.
    pub k: usize,
}

impl RouterOutput {
    /// Number of tokens routed.
    pub fn token_count(&self) -> usize {
        self.selected.len() / self.k
    }

    /// How many tokens selected each expert.
    pub fn counts(&self, experts: usize) -> Vec<usize> {
        let mut counts = vec![0usize; experts];
        for &e in &self.selected {
            counts[e] += 1;
        }
        counts
    }
}

/// Top-k softmax gate over `experts` experts.
#[derive(Debug, Clone)]
pub struct Router {
    gate: Linear,
    experts: usize,
    k: usize,
    /// Auxiliary load-balancing loss weight (zero during fine-tuning).
    aux_weight: f32,
    /// Persistent routing decision, refilled in place each forward so the
    /// hot path performs no heap allocation; doubles as the backward cache.
    out: RouterOutput,
    /// Dispatch fractions per expert (for the aux-loss gradient), reused.
    fractions: Vec<f32>,
    /// Per-expert scratch (assignment counts, mean gate probs), reused.
    counts: Vec<usize>,
    mean_probs: Vec<f32>,
    /// Value of the auxiliary loss at the last forward.
    aux_loss: f32,
    /// Set by `forward`, consumed by `backward`.
    ready: bool,
}

impl Router {
    /// Creates a router for `experts` experts, selecting `k` per token.
    ///
    /// # Panics
    /// Panics if `k` is not in `1..=experts`.
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        experts: usize,
        k: usize,
        aux_weight: f32,
        rng: &mut DetRng,
    ) -> Self {
        assert!(k >= 1 && k <= experts, "k {k} out of 1..={experts}");
        Router {
            gate: Linear::new(format!("{}.gate", name.into()), dim, experts, rng),
            experts,
            k,
            aux_weight,
            out: RouterOutput {
                probs: Tensor::zeros(1usize),
                selected: Vec::new(),
                selected_probs: Vec::new(),
                weights: Vec::new(),
                k,
            },
            fractions: Vec::new(),
            counts: Vec::new(),
            mean_probs: Vec::new(),
            aux_loss: 0.0,
            ready: false,
        }
    }

    /// Number of experts.
    pub fn experts(&self) -> usize {
        self.experts
    }

    /// Experts selected per token.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Freezes the gate parameters (the fine-tuning regime).
    pub fn freeze(&mut self) {
        self.gate.freeze_base();
    }

    /// Disables the auxiliary loss (fine-tuning does not rebalance experts).
    pub fn set_aux_weight(&mut self, w: f32) {
        self.aux_weight = w;
    }

    /// Value of the auxiliary load-balancing loss at the last forward pass.
    pub fn last_aux_loss(&self) -> f32 {
        self.aux_loss
    }

    /// Routes a `[tokens, dim]` batch, producing per-token expert choices
    /// and mixture weights.
    ///
    /// Returns a borrow of the router's persistent [`RouterOutput`]; the
    /// same storage is refilled by the next forward pass, so the hot path
    /// does not allocate. Clone any fields needed across calls.
    pub fn forward(&mut self, x: &Tensor) -> &RouterOutput {
        let logits = self.gate.forward(x);
        self.out.probs = ops::softmax_rows(&logits);
        let probs = &self.out.probs;
        ops::topk_rows_into(
            probs,
            self.k,
            &mut self.out.selected,
            &mut self.out.selected_probs,
        );
        let tokens = x.rows();

        self.out.weights.clear();
        self.out.weights.reserve(self.out.selected.len());
        for t in 0..tokens {
            let slice = &self.out.selected_probs[t * self.k..(t + 1) * self.k];
            let sum: f32 = slice.iter().sum();
            for &p in slice {
                self.out.weights.push(p / sum);
            }
        }

        // Switch-transformer auxiliary loss: E · Σ_e f_e · P̄_e, where f_e is
        // the fraction of (token, slot) assignments routed to e and P̄_e the
        // mean gate probability of e.
        self.counts.clear();
        self.counts.resize(self.experts, 0);
        for &e in &self.out.selected {
            self.counts[e] += 1;
        }
        let total = self.out.selected.len().max(1);
        self.fractions.clear();
        self.fractions
            .extend(self.counts.iter().map(|&c| c as f32 / total as f32));
        self.mean_probs.clear();
        self.mean_probs.resize(self.experts, 0.0);
        for i in 0..tokens {
            for (m, &p) in self.mean_probs.iter_mut().zip(probs.row(i)) {
                *m += p;
            }
        }
        for m in self.mean_probs.iter_mut() {
            *m /= tokens as f32;
        }
        self.aux_loss = self.aux_weight
            * self.experts as f32
            * self
                .fractions
                .iter()
                .zip(&self.mean_probs)
                .map(|(&f, &p)| f * p)
                .sum::<f32>();

        self.out.k = self.k;
        self.ready = true;
        &self.out
    }

    /// Backward pass.
    ///
    /// `grad_weights[t·k + j]` is `∂L/∂w` for the `j`-th mixture weight of
    /// token `t` (computed by the MoE block as `⟨grad_out_t, y_expert_t⟩`).
    /// Returns the gradient with respect to the router input.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward) or with the wrong
    /// number of weight gradients.
    pub fn backward(&mut self, grad_weights: &[f32]) -> Tensor {
        assert!(self.ready, "Router::backward before forward");
        self.ready = false;
        let cache = &self.out;
        let tokens = cache.probs.rows();
        assert_eq!(
            grad_weights.len(),
            tokens * self.k,
            "need one weight-gradient per (token, slot)"
        );

        // d L / d p (full expert axis), via the renormalized mixture.
        let mut grad_probs = Tensor::zeros((tokens, self.experts));
        for t in 0..tokens {
            let sel = &cache.selected[t * self.k..(t + 1) * self.k];
            let sp = &cache.selected_probs[t * self.k..(t + 1) * self.k];
            let w = &cache.weights[t * self.k..(t + 1) * self.k];
            let g = &grad_weights[t * self.k..(t + 1) * self.k];
            let s: f32 = sp.iter().sum();
            let gw_dot: f32 = g.iter().zip(w).map(|(&gi, &wi)| gi * wi).sum();
            let row = grad_probs.row_mut(t);
            for j in 0..self.k {
                row[sel[j]] += g[j] / s - gw_dot / s;
            }
        }

        // Auxiliary-loss gradient: ∂L_aux/∂p_{t,e} = aux·E·f_e / tokens
        // (dispatch fractions are treated as constants, as in Switch).
        if self.aux_weight != 0.0 {
            let scale = self.aux_weight * self.experts as f32 / tokens as f32;
            for t in 0..tokens {
                let row = grad_probs.row_mut(t);
                for (e, v) in row.iter_mut().enumerate() {
                    *v += scale * self.fractions[e];
                }
            }
        }

        let grad_logits = ops::softmax_rows_backward(&self.out.probs, &grad_probs);
        self.gate.backward(&grad_logits)
    }
}

impl Module for Router {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(aux: f32) -> Router {
        Router::new("r", 8, 4, 2, aux, &mut DetRng::new(3))
    }

    #[test]
    fn selects_k_distinct_experts_per_token() {
        let mut r = router(0.0);
        let mut rng = DetRng::new(1);
        let x = Tensor::uniform((10, 8), -1.0, 1.0, &mut rng);
        let out = r.forward(&x);
        assert_eq!(out.token_count(), 10);
        for t in 0..10 {
            let pair = &out.selected[t * 2..t * 2 + 2];
            assert_ne!(pair[0], pair[1], "top-2 must be distinct");
        }
    }

    #[test]
    fn weights_renormalize_selected_probs() {
        let mut r = router(0.0);
        let mut rng = DetRng::new(2);
        let x = Tensor::uniform((5, 8), -1.0, 1.0, &mut rng);
        let out = r.forward(&x);
        for t in 0..5 {
            let w = &out.weights[t * 2..t * 2 + 2];
            assert!((w[0] + w[1] - 1.0).abs() < 1e-5);
            let p = &out.selected_probs[t * 2..t * 2 + 2];
            assert!((w[0] / w[1] - p[0] / p[1]).abs() < 1e-4);
            assert!(w[0] >= w[1], "weights sorted like probs");
        }
    }

    #[test]
    fn counts_sum_to_token_slots() {
        let mut r = router(0.0);
        let mut rng = DetRng::new(3);
        let x = Tensor::uniform((20, 8), -1.0, 1.0, &mut rng);
        let out = r.forward(&x);
        let counts = out.counts(4);
        assert_eq!(counts.iter().sum::<usize>(), 40);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut r = router(0.0);
        let mut rng = DetRng::new(4);
        let x = Tensor::uniform((4, 8), -0.5, 0.5, &mut rng);
        let gw: Vec<f32> = (0..8).map(|i| 0.1 * (i as f32 + 1.0)).collect();

        let sel = r.forward(&x).selected.clone();
        let gin = r.backward(&gw);

        // Probe loss = Σ gw_i · w_i, with the selection pattern held fixed
        // (valid because selection is locally constant almost everywhere).
        let probe = |r: &mut Router, x: &Tensor, sel: &[usize]| -> f32 {
            let o = r.forward(x);
            // Recompute weights for the *original* selected experts.
            let mut loss = 0.0;
            for t in 0..4 {
                let pair = &sel[t * 2..t * 2 + 2];
                let p0 = o.probs.at2(t, pair[0]);
                let p1 = o.probs.at2(t, pair[1]);
                let s = p0 + p1;
                loss += gw[t * 2] * p0 / s + gw[t * 2 + 1] * p1 / s;
            }
            loss
        };
        let eps = 1e-2f32;
        for idx in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let fp = probe(&mut r, &xp, &sel);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fm = probe(&mut r, &xm, &sel);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - gin.at(idx)).abs() < 2e-2 * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {}",
                gin.at(idx)
            );
        }
    }

    #[test]
    fn aux_loss_positive_when_enabled() {
        let mut r = router(0.01);
        let mut rng = DetRng::new(5);
        let x = Tensor::uniform((16, 8), -1.0, 1.0, &mut rng);
        r.forward(&x);
        assert!(r.last_aux_loss() > 0.0);
        let mut r0 = router(0.0);
        r0.forward(&x);
        assert_eq!(r0.last_aux_loss(), 0.0);
    }

    #[test]
    fn aux_loss_is_minimal_for_balanced_routing() {
        // For fixed total mass, Σ f_e·P̄_e is minimized when both are uniform
        // (value 1/E each, product sum = E · (1/E)·(1/E) · E = 1 with the E
        // prefactor). Perfectly balanced → aux = weight · 1.
        let mut r = router(1.0);
        // Force near-uniform logits with tiny noise.
        let mut rng = DetRng::new(6);
        let x = Tensor::uniform((64, 8), -1e-3, 1e-3, &mut rng);
        r.forward(&x);
        let aux = r.last_aux_loss();
        assert!((aux - 1.0).abs() < 0.2, "balanced aux ≈ 1, got {aux}");
    }

    #[test]
    fn frozen_gate_gets_no_param_gradient() {
        let mut r = router(0.0);
        r.freeze();
        let mut rng = DetRng::new(7);
        let x = Tensor::uniform((3, 8), -1.0, 1.0, &mut rng);
        r.forward(&x);
        r.backward(&[0.5; 6]);
        r.visit_params(&mut |p| assert_eq!(p.grad.sum(), 0.0));
    }

    #[test]
    #[should_panic(expected = "k 5 out of")]
    fn oversized_k_panics() {
        Router::new("r", 4, 4, 5, 0.0, &mut DetRng::new(0));
    }
}

//! The full decoder-only MoE transformer (backbone side).
//!
//! The model owns every *non-expert* parameter — embedding, attention,
//! norms, gates, LM head — and delegates expert FFN evaluation to an
//! [`ExpertProvider`]. This matches VELA's master-process view: the model
//! backbone of Mixtral-8x7B is ~3 GB while the experts are the remaining
//! ~84 GB, so the backbone lives on the master and the experts wherever the
//! placement puts them.

use vela_nn::attention::Attention;
use vela_nn::embedding::Embedding;
use vela_nn::linear::Linear;
use vela_nn::loss::cross_entropy;
use vela_nn::param::{Module, Param};
use vela_nn::rmsnorm::RmsNorm;
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

use crate::moe_block::{MoeBlock, RoutingInfo};
use crate::provider::{ExpertProvider, LocalExpertStore};
use crate::ModelConfig;

/// One transformer block of the backbone: pre-norm attention plus a
/// pre-norm MoE block (Fig. 1 of the paper).
#[derive(Debug)]
struct Block {
    attn_norm: RmsNorm,
    attn: Attention,
    ffn_norm: RmsNorm,
    moe: MoeBlock,
}

/// Statistics from one training step.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Sum of auxiliary (load-balancing) losses across blocks.
    pub aux_loss: f32,
    /// Routing decisions per block.
    pub routing: Vec<RoutingInfo>,
}

/// The MoE transformer backbone.
#[derive(Debug)]
pub struct MoeModel {
    cfg: ModelConfig,
    embedding: Embedding,
    blocks: Vec<Block>,
    final_norm: RmsNorm,
    lm_head: Linear,
    /// `(batch, seq)` of the in-flight forward pass.
    shape: Option<(usize, usize)>,
}

impl MoeModel {
    /// Creates a freshly initialized model *and* its full expert population.
    ///
    /// Returned separately because in VELA the two halves have different
    /// owners (master vs. workers).
    pub fn new(cfg: &ModelConfig, rng: &mut DetRng) -> (Self, LocalExpertStore) {
        cfg.validate();
        let mut model_rng = rng.fork(1);
        let mut expert_rng = rng.fork(2);
        let embedding = Embedding::new("embed", cfg.vocab, cfg.dim, &mut model_rng);
        let mut blocks = Vec::with_capacity(cfg.blocks);
        for l in 0..cfg.blocks {
            blocks.push(Block {
                attn_norm: RmsNorm::new(format!("block{l}.attn_norm"), cfg.dim, &mut model_rng),
                attn: Attention::with_kv_heads(
                    format!("block{l}.attn"),
                    cfg.dim,
                    cfg.heads,
                    cfg.kv_heads,
                    &mut model_rng,
                ),
                ffn_norm: RmsNorm::new(format!("block{l}.ffn_norm"), cfg.dim, &mut model_rng),
                moe: MoeBlock::new(
                    l,
                    cfg.dim,
                    cfg.experts,
                    cfg.top_k,
                    cfg.aux_loss_weight,
                    &mut model_rng,
                ),
            });
        }
        let final_norm = RmsNorm::new("final_norm", cfg.dim, &mut model_rng);
        let lm_head = Linear::new("lm_head", cfg.dim, cfg.vocab, &mut model_rng);
        let store = LocalExpertStore::new(cfg, &mut expert_rng);
        (
            MoeModel {
                cfg: cfg.clone(),
                embedding,
                blocks,
                final_norm,
                lm_head,
                shape: None,
            },
            store,
        )
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Forward pass: token ids (grouped by batch row) to logits
    /// `[batch·seq, vocab]`.
    ///
    /// # Panics
    /// Panics if `tokens.len() != batch * seq`.
    pub fn forward(
        &mut self,
        tokens: &[usize],
        batch: usize,
        seq: usize,
        provider: &mut dyn ExpertProvider,
    ) -> Tensor {
        assert_eq!(tokens.len(), batch * seq, "tokens != batch*seq");
        self.shape = Some((batch, seq));
        let mut x = self.embedding.forward(tokens);
        for block in &mut self.blocks {
            let h = block.attn_norm.forward(&x);
            let h = block.attn.forward(&h, batch, seq);
            x.add_assign(&h);
            let m = block.ffn_norm.forward(&x);
            let m = block.moe.forward(&m, provider);
            x.add_assign(&m);
        }
        let x = self.final_norm.forward(&x);
        self.lm_head.forward(&x)
    }

    /// Backward pass from the logits gradient; accumulates gradients in the
    /// backbone and (through `provider`) in the experts.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_logits: &Tensor, provider: &mut dyn ExpertProvider) {
        self.shape.expect("MoeModel::backward before forward");
        let g = self.lm_head.backward(grad_logits);
        let mut g = self.final_norm.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            // x = x + moe(ffn_norm(x)): gradient flows through both paths.
            let gm = block.moe.backward(&g, provider);
            let gm = block.ffn_norm.backward(&gm);
            g.add_assign(&gm);
            let ga = block.attn.backward(&g);
            let ga = block.attn_norm.backward(&ga);
            g.add_assign(&ga);
        }
        self.embedding.backward(&g);
    }

    /// One full forward + loss + backward pass (no optimizer step).
    ///
    /// Gradients are zeroed at entry, so callers only need to run their
    /// optimizers afterwards.
    pub fn train_step(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
        provider: &mut dyn ExpertProvider,
    ) -> StepStats {
        self.zero_grad();
        let logits = self.forward(inputs, batch, seq, provider);
        let (loss, grad_logits) = cross_entropy(&logits, targets);
        self.backward(&grad_logits, provider);
        StepStats {
            loss,
            aux_loss: self
                .blocks
                .iter()
                .map(|b| b.moe.router().last_aux_loss())
                .sum(),
            routing: self.routing_snapshot(),
        }
    }

    /// Inference pass returning the loss without touching gradients.
    pub fn evaluate(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
        provider: &mut dyn ExpertProvider,
    ) -> f32 {
        let logits = self.forward(inputs, batch, seq, provider);
        cross_entropy(&logits, targets).0
    }

    /// Autoregressively samples `max_new` tokens after `prompt` (greedy
    /// when `temperature == 0`, softmax sampling otherwise). The context is
    /// truncated to the configured sequence length.
    ///
    /// # Panics
    /// Panics if `prompt` is empty or `temperature` is negative.
    pub fn generate(
        &mut self,
        prompt: &[usize],
        max_new: usize,
        temperature: f32,
        rng: &mut DetRng,
        provider: &mut dyn ExpertProvider,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty(), "generation needs a prompt");
        assert!(temperature >= 0.0, "temperature must be nonnegative");
        let mut tokens = prompt.to_vec();
        for _ in 0..max_new {
            let start = tokens.len().saturating_sub(self.cfg.seq_len);
            let context = &tokens[start..];
            let logits = self.forward(context, 1, context.len(), provider);
            let last = logits.row(logits.rows() - 1);
            let next = if temperature == 0.0 {
                last.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .expect("nonempty vocab")
                    .0
            } else {
                let weights: Vec<f32> = {
                    let max = last.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    last.iter()
                        .map(|&l| ((l - max) / temperature).exp())
                        .collect()
                };
                rng.categorical(&weights)
            };
            tokens.push(next);
        }
        tokens
    }

    /// Routing decisions of every block from the most recent forward pass.
    ///
    /// # Panics
    /// Panics if no forward pass has run yet.
    pub fn routing_snapshot(&self) -> Vec<RoutingInfo> {
        self.blocks
            .iter()
            .map(|b| {
                b.moe
                    .last_routing()
                    .expect("routing_snapshot before forward")
                    .clone()
            })
            .collect()
    }

    /// Sets the Switch-style expert-capacity factor on every MoE block
    /// (`None` disables dropping — the default, and the fine-tuning
    /// setting).
    pub fn set_capacity_factor(&mut self, factor: Option<f32>) {
        for block in &mut self.blocks {
            block.moe.set_capacity_factor(factor);
        }
    }

    /// Freezes every backbone parameter and disables the auxiliary loss —
    /// the state of a *pre-trained* backbone entering fine-tuning.
    pub fn freeze_all(&mut self) {
        self.visit_params(&mut |p| p.set_trainable(false));
        for block in &mut self.blocks {
            block.moe.router_mut().set_aux_weight(0.0);
        }
    }

    /// Attaches LoRA adapters to all backbone linear layers except the gate
    /// (paper §V-A: "all the linear layers except for the gating
    /// mechanism").
    pub fn attach_lora(&mut self, rank: usize, alpha: f32, rng: &mut DetRng) {
        for block in &mut self.blocks {
            block.attn.attach_lora(rank, alpha, rng);
        }
        self.lm_head.attach_lora(rank, alpha, rng);
    }
}

impl Module for MoeModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embedding.visit_params(f);
        for block in &mut self.blocks {
            block.attn_norm.visit_params(f);
            block.attn.visit_params(f);
            block.ffn_norm.visit_params(f);
            block.moe.visit_params(f);
        }
        self.final_norm.visit_params(f);
        self.lm_head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_nn::optim::{AdamW, AdamWConfig, Sgd};

    fn setup() -> (MoeModel, LocalExpertStore, ModelConfig) {
        let cfg = ModelConfig::test_small();
        let mut rng = DetRng::new(42);
        let (model, store) = MoeModel::new(&cfg, &mut rng);
        (model, store, cfg)
    }

    fn toy_batch(cfg: &ModelConfig, batch: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = DetRng::new(seed);
        let n = batch * cfg.seq_len;
        let inputs: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
        let targets: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
        (inputs, targets)
    }

    #[test]
    fn forward_produces_logits() {
        let (mut model, mut store, cfg) = setup();
        let (inputs, _) = toy_batch(&cfg, 2, 1);
        let logits = model.forward(&inputs, 2, cfg.seq_len, &mut store);
        assert_eq!(logits.shape().as_2d(), (2 * cfg.seq_len, cfg.vocab));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn train_step_reduces_loss_on_fixed_batch() {
        let (mut model, mut store, cfg) = setup();
        let (inputs, targets) = toy_batch(&cfg, 2, 2);
        let mut opt_m = AdamW::new(AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        });
        let mut opt_e = AdamW::new(AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        });
        let first = model
            .train_step(&inputs, &targets, 2, cfg.seq_len, &mut store)
            .loss;
        for _ in 0..30 {
            store.zero_grad();
            let _ = model.train_step(&inputs, &targets, 2, cfg.seq_len, &mut store);
            opt_m.step(&mut model);
            opt_e.step(&mut store);
        }
        let last = model
            .train_step(&inputs, &targets, 2, cfg.seq_len, &mut store)
            .loss;
        assert!(
            last < first * 0.9,
            "loss should drop on a memorized batch: {first} -> {last}"
        );
    }

    #[test]
    fn deterministic_construction_and_forward() {
        let cfg = ModelConfig::test_small();
        let (mut m1, mut s1) = MoeModel::new(&cfg, &mut DetRng::new(7));
        let (mut m2, mut s2) = MoeModel::new(&cfg, &mut DetRng::new(7));
        let (inputs, _) = toy_batch(&cfg, 1, 3);
        let l1 = m1.forward(&inputs, 1, cfg.seq_len, &mut s1);
        let l2 = m2.forward(&inputs, 1, cfg.seq_len, &mut s2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn routing_snapshot_covers_all_blocks() {
        let (mut model, mut store, cfg) = setup();
        let (inputs, _) = toy_batch(&cfg, 1, 4);
        model.forward(&inputs, 1, cfg.seq_len, &mut store);
        let snap = model.routing_snapshot();
        assert_eq!(snap.len(), cfg.blocks);
        for info in &snap {
            assert_eq!(info.tokens, cfg.seq_len);
            assert_eq!(info.counts.len(), cfg.experts);
        }
    }

    #[test]
    fn freeze_all_leaves_nothing_trainable() {
        let (mut model, _, _) = setup();
        model.freeze_all();
        assert_eq!(model.trainable_param_count(), 0);
    }

    #[test]
    fn attach_lora_creates_trainable_adapters_only() {
        let (mut model, _, cfg) = setup();
        model.freeze_all();
        model.attach_lora(2, 4.0, &mut DetRng::new(9));
        let trainable = model.trainable_param_count();
        assert!(trainable > 0);
        // 4 attention projections per block + lm_head, 2 matrices each.
        let mut adapters = 0;
        model.visit_params(&mut |p| {
            if p.is_trainable() {
                assert!(p.name().contains("lora"), "{} trainable", p.name());
                adapters += 1;
            }
        });
        assert_eq!(adapters, (cfg.blocks * 4 + 1) * 2);
    }

    #[test]
    fn gate_never_gets_lora() {
        let (mut model, _, _) = setup();
        model.freeze_all();
        model.attach_lora(2, 4.0, &mut DetRng::new(9));
        model.visit_params(&mut |p| {
            assert!(
                !(p.name().contains("gate") && p.name().contains("lora")),
                "gate must not be adapted: {}",
                p.name()
            );
        });
    }

    #[test]
    fn sgd_also_trains_the_model() {
        let (mut model, mut store, cfg) = setup();
        let (inputs, targets) = toy_batch(&cfg, 1, 5);
        let mut opt = Sgd::new(1e-2);
        let first = model
            .train_step(&inputs, &targets, 1, cfg.seq_len, &mut store)
            .loss;
        for _ in 0..20 {
            store.zero_grad();
            model.train_step(&inputs, &targets, 1, cfg.seq_len, &mut store);
            opt.step(&mut model);
            opt.step(&mut store);
        }
        let last = model
            .train_step(&inputs, &targets, 1, cfg.seq_len, &mut store)
            .loss;
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "tokens != batch*seq")]
    fn wrong_token_count_panics() {
        let (mut model, mut store, _) = setup();
        model.forward(&[0, 1, 2], 2, 2, &mut store);
    }

    #[test]
    fn generate_extends_the_prompt() {
        let (mut model, mut store, cfg) = setup();
        let mut rng = DetRng::new(1);
        let out = model.generate(&[1, 2, 3], 5, 0.8, &mut rng, &mut store);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < cfg.vocab));
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let (mut m1, mut s1, _) = setup();
        let (mut m2, mut s2, _) = setup();
        let a = m1.generate(&[5, 6], 6, 0.0, &mut DetRng::new(1), &mut s1);
        let b = m2.generate(&[5, 6], 6, 0.0, &mut DetRng::new(2), &mut s2);
        assert_eq!(a, b, "greedy decoding ignores the rng");
    }

    #[test]
    fn generation_respects_context_window() {
        let (mut model, mut store, cfg) = setup();
        // Prompt longer than seq_len: must truncate, not panic.
        let prompt: Vec<usize> = (0..cfg.seq_len + 5).map(|i| i % cfg.vocab).collect();
        let out = model.generate(&prompt, 2, 0.0, &mut DetRng::new(3), &mut store);
        assert_eq!(out.len(), prompt.len() + 2);
    }
}

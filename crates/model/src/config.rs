//! Model configurations and the abstract MoE "spec" used by placement and
//! traffic accounting.

/// Full configuration of a trainable MoE transformer.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Vocabulary size (set from the tokenizer).
    pub vocab: usize,
    /// Model width (feature size `H` in the paper's cost model).
    pub dim: usize,
    /// Attention query heads (must divide `dim`).
    pub heads: usize,
    /// Attention key/value heads (grouped-query attention when fewer than
    /// `heads`; must divide `heads`).
    pub kv_heads: usize,
    /// Inner width of each expert FFN.
    pub ffn_hidden: usize,
    /// Number of transformer blocks (`L` MoE blocks).
    pub blocks: usize,
    /// Experts per MoE block (`E`).
    pub experts: usize,
    /// Experts selected per token (`k`).
    pub top_k: usize,
    /// Sequence length used for training batches.
    pub seq_len: usize,
    /// Weight of the load-balancing auxiliary loss (pre-training only).
    pub aux_loss_weight: f32,
}

impl ModelConfig {
    /// The TinyMistral-6x248M analogue of the paper's measurement study
    /// (§III): 12 MoE blocks, six experts each, two selected per token.
    /// Width is scaled down so the measurement runs on a CPU in seconds.
    /// The auxiliary-loss weight is calibrated so pre-training balances
    /// expert utilisation without erasing specialisation (the source of
    /// expert locality).
    pub fn tiny_mistral(vocab: usize) -> Self {
        ModelConfig {
            vocab,
            dim: 32,
            heads: 4,
            kv_heads: 4,
            ffn_hidden: 64,
            blocks: 12,
            experts: 6,
            top_k: 2,
            seq_len: 48,
            aux_loss_weight: 2e-3,
        }
    }

    /// A Mixtral-8x7B-shaped micro model: 8 experts per block, top-2.
    /// Used to *measure* locality profiles that the scale-virtual runs
    /// replay at full Mixtral dimensions.
    pub fn mixtral_micro(vocab: usize) -> Self {
        ModelConfig {
            vocab,
            dim: 32,
            heads: 4,
            kv_heads: 4,
            ffn_hidden: 64,
            blocks: 8,
            experts: 8,
            top_k: 2,
            seq_len: 48,
            aux_loss_weight: 2e-3,
        }
    }

    /// A deliberately tiny configuration for unit tests.
    pub fn test_small() -> Self {
        ModelConfig {
            vocab: 82,
            dim: 16,
            heads: 2,
            kv_heads: 2,
            ffn_hidden: 24,
            blocks: 2,
            experts: 4,
            top_k: 2,
            seq_len: 12,
            aux_loss_weight: 1e-2,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (e.g. `top_k > experts`
    /// or `dim` not divisible by `heads`).
    pub fn validate(&self) {
        assert!(self.vocab > 1, "vocab must exceed 1");
        assert!(
            self.dim > 0 && self.dim.is_multiple_of(self.heads),
            "dim % heads != 0"
        );
        assert!(
            self.kv_heads > 0 && self.heads.is_multiple_of(self.kv_heads),
            "heads % kv_heads != 0"
        );
        assert!(self.blocks > 0, "need at least one block");
        assert!(
            self.top_k >= 1 && self.top_k <= self.experts,
            "top_k {} out of 1..={}",
            self.top_k,
            self.experts
        );
        assert!(self.seq_len > 1, "seq_len must exceed 1");
    }

    /// The abstract spec (shape-only view) of this configuration.
    pub fn spec(&self) -> MoeSpec {
        MoeSpec {
            blocks: self.blocks,
            experts: self.experts,
            top_k: self.top_k,
            hidden: self.dim,
            ffn: self.ffn_hidden,
            bits: 32,
        }
    }
}

/// Shape-only description of an MoE model, sufficient for placement and
/// traffic/time accounting (Eqs. (5)–(7) of the paper).
///
/// The evaluation's scale-virtual runs use the *real* Mixtral/GritLM shapes
/// here even though the routed payloads are virtual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoeSpec {
    /// Number of MoE blocks `L`.
    pub blocks: usize,
    /// Experts per block `E`.
    pub experts: usize,
    /// Experts selected per token `k`.
    pub top_k: usize,
    /// Feature size `H` of the tokens exchanged with experts.
    pub hidden: usize,
    /// Inner width of each expert FFN (drives compute-time modelling).
    pub ffn: usize,
    /// Bit depth `b` of exchanged features.
    pub bits: usize,
}

impl MoeSpec {
    /// The published Mixtral-8x7B shape: 32 blocks × 8 experts, top-2,
    /// `H = 4096`, half precision.
    pub fn mixtral_8x7b() -> Self {
        MoeSpec {
            blocks: 32,
            experts: 8,
            top_k: 2,
            hidden: 4096,
            ffn: 14336,
            bits: 16,
        }
    }

    /// GritLM-8x7B — a Mixtral fine-tune, so the same shape (the paper's
    /// two evaluation models share their architecture).
    pub fn gritlm_8x7b() -> Self {
        MoeSpec::mixtral_8x7b()
    }

    /// Total number of experts across all blocks.
    pub fn total_experts(&self) -> usize {
        self.blocks * self.experts
    }

    /// Bytes of feature data for one token at this spec's precision
    /// (`b·H/8` in the paper's Eq. (5)).
    pub fn token_bytes(&self) -> u64 {
        (self.bits as u64 * self.hidden as u64) / 8
    }

    /// Forward FLOPs for one token through one expert (three `H × ffn`
    /// mat-muls at 2 FLOPs per multiply-add).
    pub fn expert_flops_per_token(&self) -> f64 {
        2.0 * 3.0 * self.hidden as f64 * self.ffn as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        ModelConfig::tiny_mistral(82).validate();
        ModelConfig::mixtral_micro(82).validate();
        ModelConfig::test_small().validate();
    }

    #[test]
    fn tiny_mistral_matches_paper_shape() {
        let cfg = ModelConfig::tiny_mistral(82);
        assert_eq!(cfg.blocks, 12);
        assert_eq!(cfg.experts, 6);
        assert_eq!(cfg.top_k, 2);
    }

    #[test]
    fn mixtral_spec_matches_paper() {
        let spec = MoeSpec::mixtral_8x7b();
        assert_eq!(spec.blocks, 32);
        assert_eq!(spec.experts, 8);
        assert_eq!(spec.top_k, 2);
        assert_eq!(spec.hidden, 4096);
        assert_eq!(spec.bits, 16);
        // One token = 4096 features × 2 bytes = 8 KiB; the paper's 16.4 MB
        // for ~2000 tokens checks out with this.
        assert_eq!(spec.token_bytes(), 8192);
        assert_eq!(spec.total_experts(), 256);
    }

    #[test]
    fn spec_from_config() {
        let cfg = ModelConfig::test_small();
        let spec = cfg.spec();
        assert_eq!(spec.blocks, cfg.blocks);
        assert_eq!(spec.hidden, cfg.dim);
        assert_eq!(spec.bits, 32);
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn invalid_topk_panics() {
        let mut cfg = ModelConfig::test_small();
        cfg.top_k = 10;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "dim % heads")]
    fn invalid_heads_panics() {
        let mut cfg = ModelConfig::test_small();
        cfg.heads = 3;
        cfg.kv_heads = 3;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "heads % kv_heads")]
    fn invalid_kv_heads_panics() {
        let mut cfg = ModelConfig::test_small();
        cfg.kv_heads = 3;
        cfg.validate();
    }

    #[test]
    fn gqa_config_is_valid() {
        let mut cfg = ModelConfig::tiny_mistral(82);
        cfg.kv_heads = 2;
        cfg.validate();
    }
}

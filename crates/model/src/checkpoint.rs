//! Binary checkpointing of parameters.
//!
//! Saves and restores every parameter of a [`Module`] by name in a simple
//! length-prefixed binary format. Used to cache pre-trained micro models
//! between harness runs and to ship expert weights between processes.
//!
//! The format is intentionally minimal (this workspace is its only
//! producer and consumer):
//!
//! ```text
//! magic "VELA" | u32 version | u32 param_count |
//!   per param: u32 name_len | name bytes | u32 value_len | f32 values...
//! ```
//!
//! A second, deliberately lossy *transfer* encoding exists for opt-in
//! quantized expert migration (`VELA_QUANT=int8`): [`quantize`] transcodes
//! a "VELA" blob into a "VELQ" blob whose values are int8 codes in groups
//! of [`QUANT_GROUP`] with one f32 scale each. [`load_any`] dispatches on
//! the magic, so a worker installs either encoding; exact master-side
//! copies are always kept/fetched as "VELA".
//!
//! ```text
//! magic "VELQ" | u32 version | u32 param_count |
//!   per param: u32 name_len | name bytes | u32 value_len |
//!     per QUANT_GROUP values: f32 scale | i8 codes...
//! ```

use std::io::{self, Read, Write};

use vela_nn::param::Module;

const MAGIC: &[u8; 4] = b"VELA";
const QMAGIC: &[u8; 4] = b"VELQ";
const VERSION: u32 = 1;

/// Values per scale group of the "VELQ" int8 transfer encoding. Group-wise
/// (rather than per-tensor) scales keep the reconstruction error local:
/// one outlier only coarsens its own group.
pub const QUANT_GROUP: usize = 64;

/// Serializes every parameter of `module` into `writer`.
///
/// # Errors
/// Returns any I/O error from the writer.
pub fn save(module: &mut dyn Module, writer: &mut dyn Write) -> io::Result<()> {
    let mut count: u32 = 0;
    module.visit_params(&mut |_| count += 1);
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&count.to_le_bytes())?;
    // Stream each parameter straight out of the module — no cloned value
    // vectors, and each tensor goes through the writer as one bulk write
    // instead of a virtual call per element (expert migration serializes
    // megabytes through this path on the step critical path).
    let mut result = Ok(());
    module.visit_params(&mut |p| {
        if result.is_err() {
            return;
        }
        let name = p.name();
        let values = p.value.as_slice();
        result = (|| {
            writer.write_all(&(name.len() as u32).to_le_bytes())?;
            writer.write_all(name.as_bytes())?;
            writer.write_all(&(values.len() as u32).to_le_bytes())?;
            writer.write_all(&f32s_to_le_bytes(values))
        })();
    });
    result
}

/// Bulk-encodes an `f32` slice into its little-endian byte image — one
/// allocation and a vectorizable copy loop, replacing per-element writes.
fn f32s_to_le_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = vec![0u8; values.len() * 4];
    for (chunk, v) in out.chunks_exact_mut(4).zip(values) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Bulk-decodes a little-endian byte image back into `f32`s — the exact
/// inverse of [`f32s_to_le_bytes`], bit for bit.
fn le_bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// Restores parameters into `module` from `reader`.
///
/// Every checkpoint parameter must exist in the module with a matching
/// element count; module parameters missing from the checkpoint are left
/// untouched (so a backbone checkpoint can be loaded into a model that has
/// since gained LoRA adapters).
///
/// # Errors
/// Returns an error on malformed input, unknown parameters, or shape
/// mismatches.
pub fn load(module: &mut dyn Module, reader: &mut dyn Read) -> io::Result<()> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a VELA checkpoint"));
    }
    apply_entries(module, read_entries(reader, false)?)
}

/// Restores parameters from either encoding, dispatching on the magic:
/// exact "VELA" blobs load losslessly, "VELQ" transfer blobs are
/// dequantized on the way in. Same matching rules as [`load`].
///
/// # Errors
/// Returns an error on malformed input, unknown parameters, or shape
/// mismatches.
pub fn load_any(module: &mut dyn Module, reader: &mut dyn Read) -> io::Result<()> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    match &magic {
        m if m == MAGIC => apply_entries(module, read_entries(reader, false)?),
        m if m == QMAGIC => apply_entries(module, read_entries(reader, true)?),
        _ => Err(bad("not a VELA/VELQ checkpoint")),
    }
}

/// Transcodes an exact "VELA" blob into the int8 "VELQ" transfer
/// encoding: values are quantized in groups of [`QUANT_GROUP`] with one
/// f32 scale each (`scale = amax/127`, codes clamped to ±127; an all-zero
/// group gets scale 0). Deterministic and deliberately lossy — used only
/// for opt-in quantized expert transfer, never for master-side copies.
///
/// # Errors
/// Returns an error if `data` is not a well-formed "VELA" blob.
pub fn quantize(data: &[u8]) -> io::Result<Vec<u8>> {
    let reader: &mut &[u8] = &mut &data[..];
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a VELA checkpoint"));
    }
    let version = read_u32(reader)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(reader)?;
    // ~1 byte per value + a scale per group, vs 4 bytes per value.
    let mut out = Vec::with_capacity(data.len() / 3);
    out.extend_from_slice(QMAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    for _ in 0..count {
        let name_len = read_u32(reader)? as usize;
        if name_len > 4096 {
            return Err(bad("parameter name too long"));
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        out.extend_from_slice(&(name_len as u32).to_le_bytes());
        out.extend_from_slice(&name);
        let value_len = read_u32(reader)? as usize;
        out.extend_from_slice(&(value_len as u32).to_le_bytes());
        let mut raw = vec![0u8; value_len * 4];
        reader.read_exact(&mut raw)?;
        let values = le_bytes_to_f32s(&raw);
        for group in values.chunks(QUANT_GROUP) {
            let amax = group.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if amax > 0.0 { amax / 127.0 } else { 0.0 };
            out.extend_from_slice(&scale.to_le_bytes());
            for v in group {
                let code = if scale > 0.0 {
                    (v / scale).round().clamp(-127.0, 127.0) as i8
                } else {
                    0
                };
                out.push(code as u8);
            }
        }
    }
    if !reader.is_empty() {
        return Err(bad("trailing bytes after checkpoint"));
    }
    Ok(out)
}

/// Reads the body (everything after the magic) of either encoding into
/// name → f32-values entries; `quantized` selects the "VELQ" group
/// layout, dequantizing on the way in.
fn read_entries(
    reader: &mut dyn Read,
    quantized: bool,
) -> io::Result<std::collections::HashMap<String, Vec<f32>>> {
    let version = read_u32(reader)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(reader)? as usize;
    let mut entries: std::collections::HashMap<String, Vec<f32>> =
        std::collections::HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(reader)? as usize;
        if name_len > 4096 {
            return Err(bad("parameter name too long"));
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 parameter name"))?;
        let value_len = read_u32(reader)? as usize;
        let values = if quantized {
            let mut values = Vec::with_capacity(value_len);
            let mut buf = [0u8; 4];
            while values.len() < value_len {
                reader.read_exact(&mut buf)?;
                let scale = f32::from_le_bytes(buf);
                let group = QUANT_GROUP.min(value_len - values.len());
                let mut codes = vec![0u8; group];
                reader.read_exact(&mut codes)?;
                values.extend(codes.iter().map(|&c| f32::from(c as i8) * scale));
            }
            values
        } else {
            // One bulk read per tensor, then a vectorizable conversion —
            // the element-at-a-time loop this replaces paid a virtual
            // `read_exact` per value.
            let mut raw = vec![0u8; value_len * 4];
            reader.read_exact(&mut raw)?;
            le_bytes_to_f32s(&raw)
        };
        entries.insert(name, values);
    }
    Ok(entries)
}

/// Applies decoded checkpoint entries to `module` — the matching rules of
/// [`load`], shared by both encodings.
fn apply_entries(
    module: &mut dyn Module,
    mut entries: std::collections::HashMap<String, Vec<f32>>,
) -> io::Result<()> {
    let mut error: Option<io::Error> = None;
    module.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        if let Some(values) = entries.remove(p.name()) {
            if values.len() != p.value.len() {
                error = Some(bad(&format!(
                    "shape mismatch for {}: checkpoint {} vs model {}",
                    p.name(),
                    values.len(),
                    p.value.len()
                )));
                return;
            }
            p.value.as_mut_slice().copy_from_slice(&values);
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    if let Some(name) = entries.keys().next() {
        return Err(bad(&format!("checkpoint parameter {name} not in model")));
    }
    Ok(())
}

/// Saves to a file path.
///
/// # Errors
/// Propagates file-system and serialization errors.
pub fn save_to_path(module: &mut dyn Module, path: &std::path::Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    save(module, &mut file)
}

/// Loads from a file path.
///
/// # Errors
/// Propagates file-system and deserialization errors.
pub fn load_from_path(module: &mut dyn Module, path: &std::path::Path) -> io::Result<()> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    load(module, &mut file)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(reader: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalExpertStore, ModelConfig, MoeModel};
    use vela_tensor::rng::DetRng;

    fn fingerprint(m: &mut dyn Module) -> Vec<(String, f32)> {
        let mut out = Vec::new();
        m.visit_params(&mut |p| out.push((p.name().to_string(), p.value.sum())));
        out
    }

    #[test]
    fn roundtrip_restores_exact_weights() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(1));
        let before = fingerprint(&mut model);

        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();

        // Different init, then restore.
        let (mut other, _) = MoeModel::new(&cfg, &mut DetRng::new(2));
        assert_ne!(fingerprint(&mut other), before);
        load(&mut other, &mut buf.as_slice()).unwrap();
        assert_eq!(fingerprint(&mut other), before);
    }

    #[test]
    fn expert_store_roundtrip() {
        let cfg = ModelConfig::test_small();
        let mut store = LocalExpertStore::new(&cfg, &mut DetRng::new(3));
        let before = fingerprint(&mut store);
        let mut buf = Vec::new();
        save(&mut store, &mut buf).unwrap();
        let mut other = LocalExpertStore::new(&cfg, &mut DetRng::new(4));
        load(&mut other, &mut buf.as_slice()).unwrap();
        assert_eq!(fingerprint(&mut other), before);
    }

    #[test]
    fn partial_checkpoint_leaves_extras_untouched() {
        // Save a bare model, then load into a LoRA-augmented one.
        let cfg = ModelConfig::test_small();
        let (mut bare, _) = MoeModel::new(&cfg, &mut DetRng::new(5));
        let mut buf = Vec::new();
        save(&mut bare, &mut buf).unwrap();

        let (mut lora, _) = MoeModel::new(&cfg, &mut DetRng::new(6));
        lora.freeze_all();
        lora.attach_lora(2, 4.0, &mut DetRng::new(7));
        load(&mut lora, &mut buf.as_slice()).unwrap();
        // Backbone weights match the checkpoint; adapters still present.
        let mut has_lora = false;
        lora.visit_params(&mut |p| has_lora |= p.name().contains("lora"));
        assert!(has_lora);
    }

    #[test]
    fn unknown_checkpoint_param_is_an_error() {
        let cfg = ModelConfig::test_small();
        let (mut big, _) = MoeModel::new(&cfg, &mut DetRng::new(8));
        let mut buf = Vec::new();
        save(&mut big, &mut buf).unwrap();

        let mut small = ModelConfig::test_small();
        small.blocks = 1;
        let (mut target, _) = MoeModel::new(&small, &mut DetRng::new(9));
        let err = load(&mut target, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(10));
        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&mut model, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_magic_is_an_error() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(11));
        let err = load(&mut model, &mut b"NOPE....".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn quantized_transfer_reconstructs_within_group_error() {
        let cfg = ModelConfig::test_small();
        let mut store = LocalExpertStore::new(&cfg, &mut DetRng::new(21));
        let mut exact = Vec::new();
        save(&mut store, &mut exact).unwrap();

        let lossy = quantize(&exact).unwrap();
        assert!(
            (lossy.len() as f64) < exact.len() as f64 * 0.35,
            "int8 transfer must be well under half the f32 size \
             ({} vs {} bytes)",
            lossy.len(),
            exact.len()
        );

        let mut restored = LocalExpertStore::new(&cfg, &mut DetRng::new(22));
        load_any(&mut restored, &mut lossy.as_slice()).unwrap();

        // Every reconstructed value sits within half a quantization step
        // of its group's amax.
        let mut originals = std::collections::HashMap::new();
        store.visit_params(&mut |p| {
            originals.insert(p.name().to_string(), p.value.as_slice().to_vec());
        });
        restored.visit_params(&mut |p| {
            let orig = &originals[p.name()];
            for (o_group, g_group) in orig
                .chunks(QUANT_GROUP)
                .zip(p.value.as_slice().chunks(QUANT_GROUP))
            {
                let amax = o_group.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                for (o, g) in o_group.iter().zip(g_group) {
                    assert!(
                        (o - g).abs() <= amax / 254.0 + 1e-6,
                        "{}: {o} reconstructed as {g} (group amax {amax})",
                        p.name()
                    );
                }
            }
        });
    }

    #[test]
    fn load_any_accepts_both_encodings_and_rejects_garbage() {
        let cfg = ModelConfig::test_small();
        let mut store = LocalExpertStore::new(&cfg, &mut DetRng::new(23));
        let before = fingerprint(&mut store);
        let mut exact = Vec::new();
        save(&mut store, &mut exact).unwrap();

        let mut other = LocalExpertStore::new(&cfg, &mut DetRng::new(24));
        load_any(&mut other, &mut exact.as_slice()).unwrap();
        assert_eq!(fingerprint(&mut other), before, "VELA path stays exact");

        let err = load_any(&mut other, &mut b"NOPE....".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Plain `load` keeps rejecting the quantized encoding.
        let lossy = quantize(&exact).unwrap();
        assert!(load(&mut other, &mut lossy.as_slice()).is_err());
    }

    #[test]
    fn quantize_rejects_malformed_blobs() {
        assert!(quantize(b"NOPE....").is_err());
        let cfg = ModelConfig::test_small();
        let mut store = LocalExpertStore::new(&cfg, &mut DetRng::new(25));
        let mut exact = Vec::new();
        save(&mut store, &mut exact).unwrap();
        let truncated = &exact[..exact.len() / 2];
        assert!(quantize(truncated).is_err());
        let mut trailing = exact.clone();
        trailing.push(0);
        assert!(quantize(&trailing).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(12));
        let before = fingerprint(&mut model);
        let dir = std::env::temp_dir().join("vela-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.vela");
        save_to_path(&mut model, &path).unwrap();
        let (mut other, _) = MoeModel::new(&cfg, &mut DetRng::new(13));
        load_from_path(&mut other, &path).unwrap();
        assert_eq!(fingerprint(&mut other), before);
        std::fs::remove_file(&path).ok();
    }
}

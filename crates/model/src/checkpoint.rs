//! Binary checkpointing of parameters.
//!
//! Saves and restores every parameter of a [`Module`] by name in a simple
//! length-prefixed binary format. Used to cache pre-trained micro models
//! between harness runs and to ship expert weights between processes.
//!
//! The format is intentionally minimal (this workspace is its only
//! producer and consumer):
//!
//! ```text
//! magic "VELA" | u32 version | u32 param_count |
//!   per param: u32 name_len | name bytes | u32 value_len | f32 values...
//! ```

use std::io::{self, Read, Write};

use vela_nn::param::Module;

const MAGIC: &[u8; 4] = b"VELA";
const VERSION: u32 = 1;

/// Serializes every parameter of `module` into `writer`.
///
/// # Errors
/// Returns any I/O error from the writer.
pub fn save(module: &mut dyn Module, writer: &mut dyn Write) -> io::Result<()> {
    let mut params: Vec<(String, Vec<f32>)> = Vec::new();
    module.visit_params(&mut |p| {
        params.push((p.name().to_string(), p.value.as_slice().to_vec()));
    });
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, values) in &params {
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name.as_bytes())?;
        writer.write_all(&(values.len() as u32).to_le_bytes())?;
        for v in values {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores parameters into `module` from `reader`.
///
/// Every checkpoint parameter must exist in the module with a matching
/// element count; module parameters missing from the checkpoint are left
/// untouched (so a backbone checkpoint can be loaded into a model that has
/// since gained LoRA adapters).
///
/// # Errors
/// Returns an error on malformed input, unknown parameters, or shape
/// mismatches.
pub fn load(module: &mut dyn Module, reader: &mut dyn Read) -> io::Result<()> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a VELA checkpoint"));
    }
    let version = read_u32(reader)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(reader)? as usize;
    let mut entries: std::collections::HashMap<String, Vec<f32>> =
        std::collections::HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(reader)? as usize;
        if name_len > 4096 {
            return Err(bad("parameter name too long"));
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 parameter name"))?;
        let value_len = read_u32(reader)? as usize;
        let mut values = Vec::with_capacity(value_len);
        let mut buf = [0u8; 4];
        for _ in 0..value_len {
            reader.read_exact(&mut buf)?;
            values.push(f32::from_le_bytes(buf));
        }
        entries.insert(name, values);
    }

    let mut error: Option<io::Error> = None;
    module.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        if let Some(values) = entries.remove(p.name()) {
            if values.len() != p.value.len() {
                error = Some(bad(&format!(
                    "shape mismatch for {}: checkpoint {} vs model {}",
                    p.name(),
                    values.len(),
                    p.value.len()
                )));
                return;
            }
            p.value.as_mut_slice().copy_from_slice(&values);
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    if let Some(name) = entries.keys().next() {
        return Err(bad(&format!("checkpoint parameter {name} not in model")));
    }
    Ok(())
}

/// Saves to a file path.
///
/// # Errors
/// Propagates file-system and serialization errors.
pub fn save_to_path(module: &mut dyn Module, path: &std::path::Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    save(module, &mut file)
}

/// Loads from a file path.
///
/// # Errors
/// Propagates file-system and deserialization errors.
pub fn load_from_path(module: &mut dyn Module, path: &std::path::Path) -> io::Result<()> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    load(module, &mut file)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(reader: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalExpertStore, ModelConfig, MoeModel};
    use vela_tensor::rng::DetRng;

    fn fingerprint(m: &mut dyn Module) -> Vec<(String, f32)> {
        let mut out = Vec::new();
        m.visit_params(&mut |p| out.push((p.name().to_string(), p.value.sum())));
        out
    }

    #[test]
    fn roundtrip_restores_exact_weights() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(1));
        let before = fingerprint(&mut model);

        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();

        // Different init, then restore.
        let (mut other, _) = MoeModel::new(&cfg, &mut DetRng::new(2));
        assert_ne!(fingerprint(&mut other), before);
        load(&mut other, &mut buf.as_slice()).unwrap();
        assert_eq!(fingerprint(&mut other), before);
    }

    #[test]
    fn expert_store_roundtrip() {
        let cfg = ModelConfig::test_small();
        let mut store = LocalExpertStore::new(&cfg, &mut DetRng::new(3));
        let before = fingerprint(&mut store);
        let mut buf = Vec::new();
        save(&mut store, &mut buf).unwrap();
        let mut other = LocalExpertStore::new(&cfg, &mut DetRng::new(4));
        load(&mut other, &mut buf.as_slice()).unwrap();
        assert_eq!(fingerprint(&mut other), before);
    }

    #[test]
    fn partial_checkpoint_leaves_extras_untouched() {
        // Save a bare model, then load into a LoRA-augmented one.
        let cfg = ModelConfig::test_small();
        let (mut bare, _) = MoeModel::new(&cfg, &mut DetRng::new(5));
        let mut buf = Vec::new();
        save(&mut bare, &mut buf).unwrap();

        let (mut lora, _) = MoeModel::new(&cfg, &mut DetRng::new(6));
        lora.freeze_all();
        lora.attach_lora(2, 4.0, &mut DetRng::new(7));
        load(&mut lora, &mut buf.as_slice()).unwrap();
        // Backbone weights match the checkpoint; adapters still present.
        let mut has_lora = false;
        lora.visit_params(&mut |p| has_lora |= p.name().contains("lora"));
        assert!(has_lora);
    }

    #[test]
    fn unknown_checkpoint_param_is_an_error() {
        let cfg = ModelConfig::test_small();
        let (mut big, _) = MoeModel::new(&cfg, &mut DetRng::new(8));
        let mut buf = Vec::new();
        save(&mut big, &mut buf).unwrap();

        let mut small = ModelConfig::test_small();
        small.blocks = 1;
        let (mut target, _) = MoeModel::new(&small, &mut DetRng::new(9));
        let err = load(&mut target, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(10));
        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&mut model, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_magic_is_an_error() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(11));
        let err = load(&mut model, &mut b"NOPE....".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn file_roundtrip() {
        let cfg = ModelConfig::test_small();
        let (mut model, _) = MoeModel::new(&cfg, &mut DetRng::new(12));
        let before = fingerprint(&mut model);
        let dir = std::env::temp_dir().join("vela-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.vela");
        save_to_path(&mut model, &path).unwrap();
        let (mut other, _) = MoeModel::new(&cfg, &mut DetRng::new(13));
        load_from_path(&mut other, &path).unwrap();
        assert_eq!(fingerprint(&mut other), before);
        std::fs::remove_file(&path).ok();
    }
}

//! The MoE block: gate, dispatch, expert evaluation, weighted combine.
//!
//! Mirrors Fig. 1 of the paper. The block computes the gating decision
//! locally (the gate is part of the backbone) and delegates expert FFN
//! evaluation to an [`ExpertProvider`] — the broker seam that lets the same
//! backbone run single-process or distributed.

use vela_nn::param::{Module, Param};
use vela_obs::{LazyCounter, LazyHistogram};
use vela_tensor::rng::DetRng;
use vela_tensor::{workspace, Tensor};

/// Token-slot assignments that survived the capacity limit.
static MOE_TOKENS: LazyCounter = LazyCounter::new("model.moe.assigned");
/// Assignments dropped by the expert-capacity limit.
static MOE_DROPPED: LazyCounter = LazyCounter::new("model.moe.dropped");
/// Experts that received at least one token (dispatch occupancy).
static MOE_ACTIVE: LazyCounter = LazyCounter::new("model.moe.active_experts");
/// Distribution of per-expert group sizes (rows per dispatch group).
static MOE_GROUP_ROWS: LazyHistogram = LazyHistogram::new("model.moe.group_rows");
/// Assignments that landed on an expert with ≥ 2 live replicas (only
/// incremented when the provider actually replicates, so single-owner
/// traces carry no trace of this counter).
static MOE_REPLICATED_ROWS: LazyCounter = LazyCounter::new("model.moe.replicated_rows");

use crate::provider::{ExpertBatch, ExpertProvider};
use crate::router::Router;

/// What the gate decided for one batch at one block — the routing metadata
/// that locality measurement and traffic accounting consume.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingInfo {
    /// Selected expert ids, `[tokens · k]`, row-major.
    pub selected: Vec<usize>,
    /// Softmax scores of the selected experts, `[tokens · k]`.
    pub selected_probs: Vec<f32>,
    /// Tokens routed to each expert (length = experts), after any
    /// capacity-limit drops.
    pub counts: Vec<usize>,
    /// Number of tokens in the batch.
    pub tokens: usize,
    /// Experts per token.
    pub k: usize,
    /// (token, slot) assignments dropped by the expert-capacity limit
    /// (0 when no capacity factor is set).
    pub dropped: usize,
}

impl RoutingInfo {
    /// Per-expert access frequency: `counts[e] / (tokens · k)`.
    pub fn frequencies(&self) -> Vec<f32> {
        let total = (self.tokens * self.k).max(1) as f32;
        self.counts.iter().map(|&c| c as f32 / total).collect()
    }

    /// Sum of the selected softmax scores per token (the Fig. 3(b) metric).
    pub fn selected_score_sums(&self) -> Vec<f32> {
        (0..self.tokens)
            .map(|t| {
                self.selected_probs[t * self.k..(t + 1) * self.k]
                    .iter()
                    .sum()
            })
            .collect()
    }
}

/// One MoE block: a [`Router`] plus provider-mediated expert dispatch.
#[derive(Debug)]
pub struct MoeBlock {
    router: Router,
    block: usize,
    experts: usize,
    dim: usize,
    /// Switch-style expert capacity factor: each expert accepts at most
    /// `ceil(tokens·k/E · factor)` assignments per batch; overflow slots
    /// are dropped (their tokens ride the residual connection).
    capacity_factor: Option<f32>,
    last_routing: Option<RoutingInfo>,
    state: DispatchState,
}

/// Persistent dispatch scratch, reused across training steps so the
/// gather → compute → scatter hot path stays allocation-free.
///
/// Token groups are stored CSR-style: group `gi` serves expert
/// `experts[gi]` and owns `toks[offsets[gi]..offsets[gi + 1]]` (token row
/// indices, batch order) with the matching `(t·k + j)` slot indices in
/// `slots`.
#[derive(Debug, Default)]
struct DispatchState {
    /// Dispatched (non-empty) expert ids, ascending.
    experts: Vec<usize>,
    /// CSR group boundaries into `toks` / `slots`, length `experts.len()+1`.
    offsets: Vec<usize>,
    /// Token row indices grouped by expert, batch order within each group.
    toks: Vec<usize>,
    /// Slot index (`t·k + j`) for each grouped token, aligned with `toks`.
    slots: Vec<usize>,
    /// Expert input batches; tensor buffers are reused across steps.
    batches: Vec<ExpertBatch>,
    /// Gradient batches for the backward dispatch, likewise reused.
    grad_batches: Vec<ExpertBatch>,
    /// Expert outputs from the last forward, aligned with `experts`.
    outputs: Vec<Tensor>,
    /// Mixture weights `[tokens · k]` from the last forward.
    weights: Vec<f32>,
    /// Per-(token, slot) weight gradients, reused by backward.
    grad_weights: Vec<f32>,
    /// Per-expert scratch for the grouping pass (counts, then group ids).
    counts: Vec<usize>,
    /// Per-group fill cursors for the grouping pass.
    cursor: Vec<usize>,
    tokens: usize,
    /// Set by `forward`, consumed by `backward`.
    ready: bool,
}

impl MoeBlock {
    /// Creates block `block` with `experts` experts and top-`k` routing.
    pub fn new(
        block: usize,
        dim: usize,
        experts: usize,
        k: usize,
        aux_weight: f32,
        rng: &mut DetRng,
    ) -> Self {
        MoeBlock {
            router: Router::new(format!("block{block}"), dim, experts, k, aux_weight, rng),
            block,
            experts,
            dim,
            capacity_factor: None,
            last_routing: None,
            state: DispatchState::default(),
        }
    }

    /// Enables the Switch-style expert-capacity limit (used during
    /// pre-training to bound stragglers; disabled by default and during
    /// fine-tuning).
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    pub fn set_capacity_factor(&mut self, factor: Option<f32>) {
        if let Some(f) = factor {
            assert!(f > 0.0, "capacity factor must be positive");
        }
        self.capacity_factor = factor;
    }

    /// Assignments each expert may accept for a batch of `tokens` tokens
    /// (`usize::MAX` when no factor is set).
    pub fn expert_capacity(&self, tokens: usize) -> usize {
        match self.capacity_factor {
            None => usize::MAX,
            Some(f) => {
                let fair = (tokens * self.router.k()) as f32 / self.experts as f32;
                (fair * f).ceil() as usize
            }
        }
    }

    /// The block index within the model.
    pub fn index(&self) -> usize {
        self.block
    }

    /// The router (gate) of this block.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Mutable router access (used to freeze the gate for fine-tuning).
    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    /// Routing metadata from the most recent forward pass.
    pub fn last_routing(&self) -> Option<&RoutingInfo> {
        self.last_routing.as_ref()
    }

    /// Forward pass over `[tokens, dim]`, evaluating experts through
    /// `provider`.
    pub fn forward(&mut self, x: &Tensor, provider: &mut dyn ExpertProvider) -> Tensor {
        let _span = vela_obs::span("model.moe.fwd");
        let tokens = x.rows();
        // Hoisted above the router call: `rout` borrows the router's
        // persistent output for the rest of the pass.
        let capacity = self.expert_capacity(tokens);
        let rout = self.router.forward(x);
        let state = &mut self.state;

        // Pass 1: per-expert assignment counts, ascending expert id within
        // each token's slots; assignments beyond an expert's capacity are
        // dropped (tokens arrive in batch order, matching Switch's
        // first-come policy).
        state.counts.clear();
        state.counts.resize(self.experts, 0);
        let mut dropped = 0usize;
        for &e in &rout.selected {
            if state.counts[e] >= capacity {
                dropped += 1;
            } else {
                state.counts[e] += 1;
            }
        }

        // Pass 2: CSR offsets over the non-empty experts, then a stable
        // fill of the grouped token / slot index arrays.
        state.experts.clear();
        state.offsets.clear();
        state.offsets.push(0);
        for e in 0..self.experts {
            if state.counts[e] > 0 {
                state.experts.push(e);
                state
                    .offsets
                    .push(state.offsets.last().unwrap() + state.counts[e]);
            }
        }
        let ngroups = state.experts.len();
        let assigned = *state.offsets.last().unwrap();
        if vela_obs::enabled() {
            MOE_TOKENS.add(assigned as u64);
            MOE_DROPPED.add(dropped as u64);
            MOE_ACTIVE.add(ngroups as u64);
            for gi in 0..ngroups {
                MOE_GROUP_ROWS.record((state.offsets[gi + 1] - state.offsets[gi]) as u64);
            }
            let replicated: u64 = state
                .experts
                .iter()
                .enumerate()
                .filter(|&(_, &e)| provider.replica_degree(self.block, e) > 1)
                .map(|(gi, _)| (state.offsets[gi + 1] - state.offsets[gi]) as u64)
                .sum();
            if replicated > 0 {
                MOE_REPLICATED_ROWS.add(replicated);
            }
            if vela_obs::tracing() {
                let rows: Vec<(usize, usize)> = state
                    .experts
                    .iter()
                    .enumerate()
                    .map(|(gi, &e)| (e, state.offsets[gi + 1] - state.offsets[gi]))
                    .collect();
                vela_obs::expert_rows("model", "fwd", self.block, &rows);
            }
        }
        state.toks.clear();
        state.toks.resize(assigned, 0);
        state.slots.clear();
        state.slots.resize(assigned, 0);
        // Reuse `counts` as per-group fill cursors (group-indexed now).
        state.counts.clear();
        state.counts.resize(self.experts, usize::MAX);
        for (gi, &e) in state.experts.iter().enumerate() {
            state.counts[e] = gi;
        }
        state.cursor.clear();
        state
            .cursor
            .extend(state.offsets[..ngroups].iter().copied());
        for t in 0..tokens {
            for j in 0..rout.k {
                let slot = t * rout.k + j;
                let gi = state.counts[rout.selected[slot]];
                if gi == usize::MAX {
                    continue; // expert saturated before any assignment
                }
                let pos = state.cursor[gi];
                if pos >= state.offsets[gi + 1] {
                    continue; // over capacity: dropped (counted above)
                }
                state.toks[pos] = t;
                state.slots[pos] = slot;
                state.cursor[gi] += 1;
            }
        }

        // Gather each group's rows into reused batch tensors.
        while state.batches.len() < ngroups {
            state.batches.push(ExpertBatch {
                expert: 0,
                xs: Tensor::zeros(1usize),
            });
        }
        state.batches.truncate(ngroups);
        for gi in 0..ngroups {
            let range = state.offsets[gi]..state.offsets[gi + 1];
            state.batches[gi].expert = state.experts[gi];
            x.gather_rows_into(&state.toks[range], &mut state.batches[gi].xs);
        }

        // Weighted combine (Eq. (1)), streamed: scatter each expert output
        // row back to its token, scaled by the mixture weight, as soon as the
        // provider delivers that group — a pipelined provider keeps later
        // chunks in flight while earlier ones combine. The provider contract
        // (ascending group index, exactly once) makes this visit groups in
        // ascending expert order, reproducing the pre-CSR accumulation order
        // bit for bit.
        let mut y = workspace::take((tokens, self.dim));
        {
            let DispatchState {
                offsets,
                toks,
                slots,
                batches,
                outputs,
                ..
            } = &mut *state;
            outputs.clear();
            let weights = &rout.weights;
            provider.forward_block_streamed(self.block, batches, &mut |gi, out| {
                assert_eq!(gi, outputs.len(), "streamed group out of order");
                for (pos, p) in (offsets[gi]..offsets[gi + 1]).enumerate() {
                    let w = weights[slots[p]];
                    vela_tensor::ops::scaled_add(y.row_mut(toks[p]), w, out.row(pos));
                }
                outputs.push(out);
            });
        }
        assert_eq!(
            state.outputs.len(),
            ngroups,
            "provider returned wrong count"
        );

        // Rebuild per-expert counts for the routing info (cursor pass
        // overwrote them with group indices).
        let info = self.last_routing.get_or_insert_with(|| RoutingInfo {
            selected: Vec::new(),
            selected_probs: Vec::new(),
            counts: Vec::new(),
            tokens: 0,
            k: rout.k,
            dropped: 0,
        });
        info.selected.clear();
        info.selected.extend_from_slice(&rout.selected);
        info.selected_probs.clear();
        info.selected_probs.extend_from_slice(&rout.selected_probs);
        info.counts.clear();
        info.counts.resize(self.experts, 0);
        for (gi, &e) in state.experts.iter().enumerate() {
            info.counts[e] = state.offsets[gi + 1] - state.offsets[gi];
        }
        info.tokens = tokens;
        info.k = rout.k;
        info.dropped = dropped;

        state.weights.clear();
        state.weights.extend_from_slice(&rout.weights);
        state.tokens = tokens;
        state.ready = true;
        y
    }

    /// Backward pass; accumulates router gradients, sends expert gradients
    /// through `provider`, and returns the input gradient.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Tensor, provider: &mut dyn ExpertProvider) -> Tensor {
        let _span = vela_obs::span("model.moe.bwd");
        assert!(self.state.ready, "MoeBlock::backward before forward");
        let state = &mut self.state;
        state.ready = false;
        let k = self.router.k();
        let ngroups = state.experts.len();

        // Per-group gradient batches (w · grad_out_t per token) and
        // mixture-weight gradients ⟨grad_out_t, y_expert_t⟩, built into
        // reused buffers: gather the grad rows, then scale each by its
        // mixture weight.
        state.grad_weights.clear();
        state.grad_weights.resize(state.tokens * k, 0.0);
        while state.grad_batches.len() < ngroups {
            state.grad_batches.push(ExpertBatch {
                expert: 0,
                xs: Tensor::zeros(1usize),
            });
        }
        state.grad_batches.truncate(ngroups);
        for gi in 0..ngroups {
            let range = state.offsets[gi]..state.offsets[gi + 1];
            let gb = &mut state.grad_batches[gi];
            gb.expert = state.experts[gi];
            grad_out.gather_rows_into(&state.toks[range.clone()], &mut gb.xs);
            let out = &state.outputs[gi];
            for (pos, p) in range.enumerate() {
                let slot = state.slots[p];
                let w = state.weights[slot];
                let row = gb.xs.row_mut(pos);
                let gw = row.iter().zip(out.row(pos)).map(|(&a, &b)| a * b).sum();
                state.grad_weights[slot] = gw;
                for d in row.iter_mut() {
                    *d *= w;
                }
            }
        }

        // Streamed gradient scatter: fold each group's input gradient into
        // `gx` as it arrives; ascending-prefix delivery keeps the
        // accumulation order identical to the collect-then-scatter path.
        let mut gx = workspace::take((state.tokens, self.dim));
        let mut emitted = 0usize;
        {
            let DispatchState {
                offsets,
                toks,
                grad_batches,
                ..
            } = &mut *state;
            provider.backward_block_streamed(self.block, grad_batches, &mut |gi, grads| {
                assert_eq!(gi, emitted, "streamed group out of order");
                gx.scatter_add_rows(&toks[offsets[gi]..offsets[gi + 1]], &grads);
                emitted += 1;
            });
        }
        assert_eq!(emitted, ngroups, "provider returned wrong gradient count");
        gx.add_assign(&self.router.backward(&state.grad_weights));
        gx
    }
}

impl Module for MoeBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.router.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::LocalExpertStore;
    use crate::ModelConfig;

    fn setup() -> (MoeBlock, LocalExpertStore, ModelConfig) {
        let cfg = ModelConfig::test_small();
        let mut rng = DetRng::new(10);
        let store = LocalExpertStore::new(&cfg, &mut rng);
        let block = MoeBlock::new(0, cfg.dim, cfg.experts, cfg.top_k, 0.0, &mut rng);
        (block, store, cfg)
    }

    #[test]
    fn forward_shape_and_routing_info() {
        let (mut block, mut store, cfg) = setup();
        let mut rng = DetRng::new(1);
        let x = Tensor::uniform((9, cfg.dim), -1.0, 1.0, &mut rng);
        let y = block.forward(&x, &mut store);
        assert_eq!(y.shape().as_2d(), (9, cfg.dim));
        let info = block.last_routing().unwrap();
        assert_eq!(info.tokens, 9);
        assert_eq!(info.counts.iter().sum::<usize>(), 9 * cfg.top_k);
        let freq_sum: f32 = info.frequencies().iter().sum();
        assert!((freq_sum - 1.0).abs() < 1e-5);
        assert_eq!(info.selected_score_sums().len(), 9);
    }

    #[test]
    fn output_is_convex_combination_of_expert_outputs() {
        // With k = experts = 1-expert selection impossible here, instead
        // verify against a manual recomputation.
        let (mut block, mut store, cfg) = setup();
        let mut rng = DetRng::new(2);
        let x = Tensor::uniform((4, cfg.dim), -1.0, 1.0, &mut rng);
        let y = block.forward(&x, &mut store);
        let info = block.last_routing().unwrap().clone();

        // Manual: for token 0, recompute w0·E_a(x0) + w1·E_b(x0).
        let e0 = info.selected[0];
        let e1 = info.selected[1];
        let p0 = info.selected_probs[0];
        let p1 = info.selected_probs[1];
        let (w0, w1) = (p0 / (p0 + p1), p1 / (p0 + p1));
        let x0 = x.gather_rows(&[0]);
        let y0a = store.expert_mut(0, e0).forward(&x0);
        let y0b = store.expert_mut(0, e1).forward(&x0);
        let manual = y0a.scale(w0).add(&y0b.scale(w1));
        assert!(vela_tensor::approx_eq(y.row(0), manual.as_slice(), 1e-4));
    }

    #[test]
    fn backward_produces_full_input_gradient() {
        let (mut block, mut store, cfg) = setup();
        let mut rng = DetRng::new(3);
        let x = Tensor::uniform((6, cfg.dim), -1.0, 1.0, &mut rng);
        block.forward(&x, &mut store);
        let g = Tensor::uniform((6, cfg.dim), -1.0, 1.0, &mut rng);
        let gx = block.backward(&g, &mut store);
        assert_eq!(gx.shape().as_2d(), (6, cfg.dim));
        assert!(gx.norm() > 0.0);
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let (mut block, mut store, cfg) = setup();
        let mut rng = DetRng::new(4);
        let x = Tensor::uniform((3, cfg.dim), -0.5, 0.5, &mut rng);
        let gout = Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng);

        block.forward(&x, &mut store);
        let gx = block.backward(&gout, &mut store);

        let probe = |block: &mut MoeBlock, store: &mut LocalExpertStore, x: &Tensor| -> f32 {
            block
                .forward(x, store)
                .as_slice()
                .iter()
                .zip(gout.as_slice())
                .map(|(&y, &g)| y * g)
                .sum()
        };
        let eps = 1e-2f32;
        let mut checked = 0;
        for idx in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            // Skip points where the perturbation flips the routing decision
            // (the function is only piecewise smooth).
            let fp = probe(&mut block, &mut store, &xp);
            let sel_p = block.last_routing().unwrap().selected.clone();
            let fm = probe(&mut block, &mut store, &xm);
            let sel_m = block.last_routing().unwrap().selected.clone();
            if sel_p != sel_m {
                continue;
            }
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - gx.at(idx)).abs() < 5e-2 * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {}",
                gx.at(idx)
            );
            checked += 1;
        }
        assert!(checked >= 3, "too few smooth points checked");
    }

    #[test]
    fn expert_gradients_flow_only_to_selected_experts() {
        let (mut block, mut store, cfg) = setup();
        let mut rng = DetRng::new(5);
        let x = Tensor::uniform((2, cfg.dim), -1.0, 1.0, &mut rng);
        block.forward(&x, &mut store);
        let selected: std::collections::HashSet<usize> = block
            .last_routing()
            .unwrap()
            .selected
            .iter()
            .copied()
            .collect();
        block.backward(&Tensor::ones((2, cfg.dim)), &mut store);
        for e in 0..cfg.experts {
            let mut grad_norm = 0.0f32;
            store
                .expert_mut(0, e)
                .visit_params(&mut |p| grad_norm += p.grad.norm());
            if selected.contains(&e) {
                assert!(grad_norm > 0.0, "selected expert {e} got no gradient");
            } else {
                assert_eq!(grad_norm, 0.0, "unselected expert {e} got gradient");
            }
        }
    }

    #[test]
    fn capacity_factor_drops_overflow() {
        let (mut block, mut store, cfg) = setup();
        // Capacity 1x fair share: with skew, some assignments must drop.
        block.set_capacity_factor(Some(0.5));
        let mut rng = DetRng::new(21);
        let x = Tensor::uniform((16, cfg.dim), -1.0, 1.0, &mut rng);
        let cap = block.expert_capacity(16);
        let y = block.forward(&x, &mut store);
        assert_eq!(y.shape().as_2d(), (16, cfg.dim));
        let info = block.last_routing().unwrap();
        assert!(
            info.counts.iter().all(|&c| c <= cap),
            "{:?} > {cap}",
            info.counts
        );
        assert!(info.dropped > 0, "0.5x capacity must drop something");
        assert_eq!(
            info.counts.iter().sum::<usize>() + info.dropped,
            16 * cfg.top_k
        );
        // Backward still works with dropped slots.
        let gx = block.backward(&Tensor::ones((16, cfg.dim)), &mut store);
        assert_eq!(gx.shape().as_2d(), (16, cfg.dim));
    }

    #[test]
    fn no_capacity_factor_drops_nothing() {
        let (mut block, mut store, cfg) = setup();
        let mut rng = DetRng::new(22);
        let x = Tensor::uniform((8, cfg.dim), -1.0, 1.0, &mut rng);
        block.forward(&x, &mut store);
        assert_eq!(block.last_routing().unwrap().dropped, 0);
        assert_eq!(block.expert_capacity(8), usize::MAX);
    }

    #[test]
    fn generous_capacity_matches_unlimited_exactly() {
        let cfg = ModelConfig::test_small();
        let mut rng = DetRng::new(23);
        let x = Tensor::uniform((6, cfg.dim), -1.0, 1.0, &mut rng);
        let run = |factor: Option<f32>| {
            let mut rng = DetRng::new(10);
            let mut store = LocalExpertStore::new(&cfg, &mut rng);
            let mut block = MoeBlock::new(0, cfg.dim, cfg.experts, cfg.top_k, 0.0, &mut rng);
            block.set_capacity_factor(factor);
            block.forward(&x, &mut store)
        };
        assert_eq!(run(None), run(Some(100.0)));
    }

    #[test]
    #[should_panic(expected = "capacity factor must be positive")]
    fn zero_capacity_factor_panics() {
        let (mut block, _, _) = setup();
        block.set_capacity_factor(Some(0.0));
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_before_forward_panics() {
        let (mut block, mut store, cfg) = setup();
        block.backward(&Tensor::zeros((1, cfg.dim)), &mut store);
    }
}

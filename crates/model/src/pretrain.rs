//! Balanced pre-training of MoE models.
//!
//! Expert locality in the paper is an *emergent* property of fully trained
//! MoE models: balanced pre-training (driven by the auxiliary loss) gives
//! every expert enough gradient signal to specialise, and the specialisation
//! is what later skews routing on narrow fine-tuning datasets. This module
//! reproduces that pipeline on the mixed-domain corpus, so the rest of the
//! evaluation works with genuinely pre-trained models instead of hard-coded
//! routing tables.

use vela_data::{CharTokenizer, Corpus, TokenDataset};
use vela_nn::optim::{AdamW, AdamWConfig};
use vela_nn::param::Module;
use vela_tensor::rng::DetRng;

use crate::model::MoeModel;
use crate::provider::LocalExpertStore;
use crate::ModelConfig;

/// Hyper-parameters for a pre-training run.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Sequences per batch.
    pub batch_size: usize,
    /// Learning rate (pre-training trains from scratch, so much larger than
    /// the fine-tuning rate).
    pub lr: f32,
    /// Characters of mixed-domain corpus to generate.
    pub corpus_chars: usize,
    /// Optional Switch-style expert-capacity factor (bounds per-expert
    /// load during pre-training; `None` disables dropping).
    pub capacity_factor: Option<f32>,
    /// Master seed for corpus, init and batch sampling.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            steps: 300,
            batch_size: 8,
            lr: 3e-3,
            corpus_chars: 200_000,
            capacity_factor: None,
            seed: 2025,
        }
    }
}

/// Result of a pre-training run.
#[derive(Debug)]
pub struct Pretrained {
    /// The trained backbone.
    pub model: MoeModel,
    /// The trained expert population.
    pub experts: LocalExpertStore,
    /// Loss trajectory (one entry per step).
    pub losses: Vec<f32>,
}

/// Pre-trains a model on the mixed-domain corpus with the load-balancing
/// auxiliary loss active.
///
/// Deterministic: equal `(cfg, pcfg)` always produce the same model.
pub fn pretrain(cfg: &ModelConfig, pcfg: &PretrainConfig) -> Pretrained {
    let mut rng = DetRng::new(pcfg.seed);
    let (mut model, mut experts) = MoeModel::new(cfg, &mut rng);
    model.set_capacity_factor(pcfg.capacity_factor);

    let tokenizer = CharTokenizer::new();
    assert_eq!(
        tokenizer.vocab_size(),
        cfg.vocab,
        "model vocab must match the workspace tokenizer"
    );
    let text = Corpus::Mixed.generate(pcfg.corpus_chars, pcfg.seed);
    let dataset = TokenDataset::from_text(&tokenizer, &text);

    let opt_cfg = AdamWConfig {
        lr: pcfg.lr,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        weight_decay: 1e-4,
    };
    let mut opt_model = AdamW::new(opt_cfg);
    let mut opt_experts = AdamW::new(opt_cfg);

    let mut batch_rng = rng.fork(77);
    let mut losses = Vec::with_capacity(pcfg.steps);
    for _ in 0..pcfg.steps {
        let batch = dataset.sample_batch(pcfg.batch_size, cfg.seq_len, &mut batch_rng);
        experts.zero_grad();
        let stats = model.train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
            &mut experts,
        );
        opt_model.step(&mut model);
        opt_experts.step(&mut experts);
        losses.push(stats.loss);
    }
    Pretrained {
        model,
        experts,
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> (ModelConfig, PretrainConfig) {
        let mut cfg = ModelConfig::test_small();
        cfg.vocab = CharTokenizer::new().vocab_size();
        let pcfg = PretrainConfig {
            steps: 40,
            batch_size: 4,
            corpus_chars: 20_000,
            ..PretrainConfig::default()
        };
        (cfg, pcfg)
    }

    #[test]
    fn pretraining_reduces_loss() {
        let (cfg, pcfg) = quick_cfg();
        let result = pretrain(&cfg, &pcfg);
        let head: f32 = result.losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = result.losses[result.losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            tail < head * 0.9,
            "pre-training should learn: {head} -> {tail}"
        );
    }

    #[test]
    fn capacity_factor_still_learns() {
        let (cfg, mut pcfg) = quick_cfg();
        pcfg.capacity_factor = Some(1.25);
        let result = pretrain(&cfg, &pcfg);
        let head: f32 = result.losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = result.losses[result.losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            tail < head,
            "capacity-limited pre-training should learn: {head} -> {tail}"
        );
    }

    #[test]
    fn pretraining_is_deterministic() {
        let (cfg, pcfg) = quick_cfg();
        let a = pretrain(&cfg, &pcfg);
        let b = pretrain(&cfg, &pcfg);
        assert_eq!(a.losses, b.losses);
    }

    #[test]
    #[should_panic(expected = "vocab must match")]
    fn wrong_vocab_panics() {
        let (mut cfg, pcfg) = quick_cfg();
        cfg.vocab = 10;
        pretrain(&cfg, &pcfg);
    }
}

//! The Expert Broker seam: providers evaluate experts on the backbone's
//! behalf.
//!
//! VELA's framework contribution is the separation of expert layers from the
//! model backbone (§IV-A). In this codebase that separation is the
//! [`ExpertProvider`] trait: the backbone's MoE blocks group tokens by
//! selected expert and hand the groups to a provider, never touching expert
//! weights themselves. [`LocalExpertStore`] is the single-process provider;
//! the distributed runtime implements the same trait with a broker that
//! ships the groups to worker processes over the network.

use vela_nn::param::{Module, Param};
use vela_nn::swiglu::SwiGlu;
use vela_tensor::parallel;
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

use crate::ModelConfig;

/// A group of token activations bound for one expert.
#[derive(Debug, Clone)]
pub struct ExpertBatch {
    /// Expert index within the block.
    pub expert: usize,
    /// Token features, `[tokens_for_this_expert, dim]`.
    pub xs: Tensor,
}

/// Evaluates expert FFNs for the backbone.
///
/// For every block, a training step calls [`forward_block`] exactly once and
/// then [`backward_block`] exactly once with gradients in the *same order*
/// as the forward batches. Providers may rely on that protocol (the
/// distributed broker does, to match gradient messages to cached
/// activations).
///
/// [`forward_block`]: ExpertProvider::forward_block
/// [`backward_block`]: ExpertProvider::backward_block
pub trait ExpertProvider {
    /// Live replica count serving `(block, expert)`. Providers with
    /// single-owner experts — the default — report 1; the distributed
    /// broker overrides this with its placement's replica-set size so the
    /// backbone can observe which token groups ride a replicated expert.
    /// Purely informational: dispatch semantics never depend on it.
    fn replica_degree(&self, _block: usize, _expert: usize) -> usize {
        1
    }

    /// Runs each batch through its expert; returns outputs in input order.
    fn forward_block(&mut self, block: usize, batches: &[ExpertBatch]) -> Vec<Tensor>;

    /// Backward pass for the batches of the last `forward_block(block, ..)`
    /// call; `grads[i]` corresponds to that call's `batches[i]`. Returns the
    /// gradients with respect to each batch's input.
    fn backward_block(&mut self, block: usize, grads: &[ExpertBatch]) -> Vec<Tensor>;

    /// Streamed [`forward_block`](Self::forward_block): calls
    /// `emit(i, output_i)` exactly once per batch, in **ascending batch
    /// index order** (`i = 0, 1, …, batches.len() − 1`). That contract is
    /// what lets callers fold results into an accumulator as they arrive
    /// and still reproduce the collect-then-combine path bit for bit.
    ///
    /// The default collects then emits; pipelined providers override it to
    /// emit each completed prefix while later batches are still in flight.
    fn forward_block_streamed(
        &mut self,
        block: usize,
        batches: &[ExpertBatch],
        emit: &mut dyn FnMut(usize, Tensor),
    ) {
        for (i, out) in self.forward_block(block, batches).into_iter().enumerate() {
            emit(i, out);
        }
    }

    /// Streamed [`backward_block`](Self::backward_block), same delivery
    /// contract as [`forward_block_streamed`](Self::forward_block_streamed).
    fn backward_block_streamed(
        &mut self,
        block: usize,
        grads: &[ExpertBatch],
        emit: &mut dyn FnMut(usize, Tensor),
    ) {
        for (i, out) in self.backward_block(block, grads).into_iter().enumerate() {
            emit(i, out);
        }
    }
}

/// All experts of a model, held in-process.
///
/// Slots are optional so experts can be *taken out* and shipped to worker
/// processes — after distribution, the master-side store is empty and the
/// worker-side stores hold disjoint shards.
#[derive(Debug, Default)]
pub struct LocalExpertStore {
    slots: Vec<Vec<Option<SwiGlu>>>,
    /// Persistent dispatch buffer: experts move out of their slots for the
    /// duration of one block call, keeping the hot path allocation-free.
    scratch: Vec<SwiGlu>,
    /// Persistent batch descriptors for the packed-rows path.
    packed_batches: Vec<ExpertBatch>,
    /// Recycled input buffers for the packed-rows path: serving a packed
    /// region allocates no input-side memory after warmup.
    packed_pool: Vec<Vec<f32>>,
}

impl LocalExpertStore {
    /// Creates the full expert population for a model configuration.
    pub fn new(cfg: &ModelConfig, rng: &mut DetRng) -> Self {
        let mut slots = Vec::with_capacity(cfg.blocks);
        for l in 0..cfg.blocks {
            let mut row = Vec::with_capacity(cfg.experts);
            for e in 0..cfg.experts {
                row.push(Some(SwiGlu::new(
                    format!("block{l}.expert{e}"),
                    cfg.dim,
                    cfg.ffn_hidden,
                    rng,
                )));
            }
            slots.push(row);
        }
        LocalExpertStore {
            slots,
            ..LocalExpertStore::default()
        }
    }

    /// An empty store with slots for `blocks × experts` experts (a worker
    /// shard before experts arrive).
    pub fn empty(blocks: usize, experts: usize) -> Self {
        LocalExpertStore {
            slots: vec![std::iter::repeat_with(|| None).take(experts).collect(); blocks],
            ..LocalExpertStore::default()
        }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.slots.len()
    }

    /// Number of expert slots per block.
    pub fn experts_per_block(&self) -> usize {
        self.slots.first().map_or(0, Vec::len)
    }

    /// Number of experts currently present.
    pub fn present_count(&self) -> usize {
        self.slots.iter().flatten().filter(|s| s.is_some()).count()
    }

    /// Whether expert `(block, expert)` is present.
    pub fn contains(&self, block: usize, expert: usize) -> bool {
        self.slots
            .get(block)
            .and_then(|r| r.get(expert))
            .is_some_and(Option::is_some)
    }

    /// Removes and returns an expert (to ship it elsewhere).
    ///
    /// # Panics
    /// Panics if the slot is out of range or empty.
    pub fn take(&mut self, block: usize, expert: usize) -> SwiGlu {
        self.slots[block][expert]
            .take()
            .unwrap_or_else(|| panic!("expert ({block},{expert}) not present"))
    }

    /// Installs an expert into an empty slot.
    ///
    /// # Panics
    /// Panics if the slot is out of range or already occupied.
    pub fn insert(&mut self, block: usize, expert: usize, ffn: SwiGlu) {
        let slot = &mut self.slots[block][expert];
        assert!(slot.is_none(), "slot ({block},{expert}) already occupied");
        *slot = Some(ffn);
    }

    /// Mutable access to one expert.
    ///
    /// # Panics
    /// Panics if the slot is out of range or empty.
    pub fn expert_mut(&mut self, block: usize, expert: usize) -> &mut SwiGlu {
        self.slots[block][expert]
            .as_mut()
            .unwrap_or_else(|| panic!("expert ({block},{expert}) not present"))
    }

    /// Freezes all base projections of all present experts.
    pub fn freeze_base(&mut self) {
        for row in &mut self.slots {
            for ffn in row.iter_mut().flatten() {
                ffn.freeze_base();
            }
        }
    }

    /// Attaches LoRA adapters to all present experts.
    pub fn attach_lora(&mut self, rank: usize, alpha: f32, rng: &mut DetRng) {
        for row in &mut self.slots {
            for ffn in row.iter_mut().flatten() {
                ffn.attach_lora(rank, alpha, rng);
            }
        }
    }
}

impl LocalExpertStore {
    /// Moves each batch's expert out of its slot into the persistent
    /// `scratch` buffer (batch order) so the batches can be evaluated
    /// concurrently without per-call allocation. Token groups are formed
    /// per expert, so a well-formed call never names the same expert
    /// twice. Paired with [`return_experts`](Self::return_experts).
    fn take_experts(&mut self, block: usize, batches: &[ExpertBatch]) {
        self.scratch.clear();
        let row = &mut self.slots[block];
        for b in batches {
            let ffn = row
                .get_mut(b.expert)
                .and_then(Option::take)
                .unwrap_or_else(|| {
                    panic!("expert ({block},{}) not present or batched twice", b.expert)
                });
            self.scratch.push(ffn);
        }
    }

    /// Puts the experts taken by [`take_experts`](Self::take_experts) back
    /// into their slots.
    fn return_experts(&mut self, block: usize, batches: &[ExpertBatch]) {
        let row = &mut self.slots[block];
        for (b, ffn) in batches.iter().zip(self.scratch.drain(..)) {
            row[b.expert] = Some(ffn);
        }
    }

    /// Forward pass over one packed dispatch region — see
    /// [`run_rows`](Self::run_rows) for the contract.
    pub fn forward_rows(
        &mut self,
        block: usize,
        width: usize,
        parts: &[(usize, usize)],
        region: &[f32],
        out: &mut Vec<f32>,
    ) {
        self.run_rows(block, false, width, parts, region, out);
    }

    /// Backward pass over one packed gradient region — see
    /// [`run_rows`](Self::run_rows) for the contract.
    pub fn backward_rows(
        &mut self,
        block: usize,
        width: usize,
        parts: &[(usize, usize)],
        region: &[f32],
        out: &mut Vec<f32>,
    ) {
        self.run_rows(block, true, width, parts, region, out);
    }

    /// Runs one packed region through the same per-expert kernels and
    /// grouping as [`ExpertProvider::forward_block`]/`backward_block`, so
    /// results are bit-identical to the batch API on equivalent inputs.
    /// `region` is a single contiguous row-major block of `Σ rows · width`
    /// values laid out densely in `parts` order (`parts[i] = (expert,
    /// rows)`); each part's output rows are appended to `out` in the same
    /// order, so the reply is again one region with no per-item framing.
    /// Input buffers are recycled through a persistent pool — slicing the
    /// region into expert batches allocates nothing after warmup.
    ///
    /// # Panics
    /// Panics if `region` does not match the `parts` layout, or on the
    /// same conditions as the batch API (absent/duplicated experts).
    fn run_rows(
        &mut self,
        block: usize,
        backward: bool,
        width: usize,
        parts: &[(usize, usize)],
        region: &[f32],
        out: &mut Vec<f32>,
    ) {
        let total: usize = parts.iter().map(|&(_, rows)| rows * width).sum();
        assert_eq!(
            region.len(),
            total,
            "packed region does not match its span layout"
        );
        let mut batches = std::mem::take(&mut self.packed_batches);
        batches.clear();
        let mut lo = 0usize;
        for &(expert, rows) in parts {
            let mut buf = self.packed_pool.pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(&region[lo..lo + rows * width]);
            lo += rows * width;
            batches.push(ExpertBatch {
                expert,
                xs: Tensor::from_vec((rows, width), buf),
            });
        }
        let outs = if batches.is_empty() {
            Vec::new()
        } else if backward {
            self.backward_block(block, &batches)
        } else {
            self.forward_block(block, &batches)
        };
        out.reserve(total);
        for t in &outs {
            out.extend_from_slice(t.as_slice());
        }
        for b in batches.drain(..) {
            self.packed_pool.push(b.xs.into_vec());
        }
        self.packed_batches = batches;
    }
}

/// Estimated flop-ish work for dispatching `batches` across experts: each
/// token row drives six `dim × hidden` mat-vec products (three projections,
/// forward and backward are comparable).
fn dispatch_work(batches: &[ExpertBatch], hidden: usize) -> usize {
    let rows: usize = batches.iter().map(|b| b.xs.rows()).sum();
    let dim = batches.first().map_or(0, |b| b.xs.cols());
    rows * dim * hidden * 6
}

impl ExpertProvider for LocalExpertStore {
    fn forward_block(&mut self, block: usize, batches: &[ExpertBatch]) -> Vec<Tensor> {
        self.take_experts(block, batches);
        let work = dispatch_work(batches, self.scratch.first().map_or(0, |f| f.hidden()));
        let out = parallel::par_map_mut_hinted(&mut self.scratch, work, |i, ffn| {
            ffn.forward(&batches[i].xs)
        });
        self.return_experts(block, batches);
        out
    }

    fn backward_block(&mut self, block: usize, grads: &[ExpertBatch]) -> Vec<Tensor> {
        self.take_experts(block, grads);
        let work = dispatch_work(grads, self.scratch.first().map_or(0, |f| f.hidden()));
        let out = parallel::par_map_mut_hinted(&mut self.scratch, work, |i, ffn| {
            ffn.backward(&grads[i].xs)
        });
        self.return_experts(block, grads);
        out
    }
}

impl Module for LocalExpertStore {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for row in &mut self.slots {
            for ffn in row.iter_mut().flatten() {
                ffn.visit_params(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> LocalExpertStore {
        LocalExpertStore::new(&ModelConfig::test_small(), &mut DetRng::new(1))
    }

    #[test]
    fn new_store_is_fully_populated() {
        let cfg = ModelConfig::test_small();
        let s = store();
        assert_eq!(s.blocks(), cfg.blocks);
        assert_eq!(s.experts_per_block(), cfg.experts);
        assert_eq!(s.present_count(), cfg.blocks * cfg.experts);
        assert!(s.contains(0, 0));
    }

    #[test]
    fn local_store_reports_single_owner_experts() {
        let s = store();
        for e in 0..s.experts_per_block() {
            assert_eq!(s.replica_degree(0, e), 1);
        }
    }

    #[test]
    fn take_and_insert_move_experts() {
        let mut s = store();
        let ffn = s.take(1, 2);
        assert!(!s.contains(1, 2));
        let mut other = LocalExpertStore::empty(s.blocks(), s.experts_per_block());
        other.insert(1, 2, ffn);
        assert!(other.contains(1, 2));
        assert_eq!(other.present_count(), 1);
    }

    #[test]
    fn forward_block_routes_to_right_expert() {
        let mut s = store();
        let cfg = ModelConfig::test_small();
        let mut rng = DetRng::new(2);
        let xs = Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng);
        let via_provider = s.forward_block(
            0,
            &[ExpertBatch {
                expert: 1,
                xs: xs.clone(),
            }],
        );
        let direct = s.expert_mut(0, 1).forward(&xs);
        assert_eq!(via_provider[0], direct);
    }

    #[test]
    fn backward_block_returns_input_grads() {
        let mut s = store();
        let cfg = ModelConfig::test_small();
        let mut rng = DetRng::new(3);
        let xs = Tensor::uniform((2, cfg.dim), -1.0, 1.0, &mut rng);
        s.forward_block(
            0,
            &[ExpertBatch {
                expert: 0,
                xs: xs.clone(),
            }],
        );
        let gin = s.backward_block(
            0,
            &[ExpertBatch {
                expert: 0,
                xs: Tensor::ones((2, cfg.dim)),
            }],
        );
        assert_eq!(gin[0].shape().as_2d(), (2, cfg.dim));
    }

    #[test]
    fn module_visits_all_expert_params() {
        let mut s = store();
        let cfg = ModelConfig::test_small();
        let mut names = std::collections::HashSet::new();
        s.visit_params(&mut |p| {
            assert!(names.insert(p.name().to_string()), "duplicate {}", p.name());
        });
        // 3 projections × 1 weight each per expert.
        assert_eq!(names.len(), cfg.blocks * cfg.experts * 3);
    }

    #[test]
    fn packed_rows_match_batch_api_bitwise() {
        // One contiguous region through the rows API must reproduce the
        // batch API bit for bit — same expert grouping, same kernels.
        let cfg = ModelConfig::test_small();
        let mut s = store();
        let mut rng = DetRng::new(7);
        let batches: Vec<ExpertBatch> = (0..3)
            .map(|e| ExpertBatch {
                expert: e,
                xs: Tensor::uniform((e + 1, cfg.dim), -1.0, 1.0, &mut rng),
            })
            .collect();
        let parts: Vec<(usize, usize)> = batches.iter().map(|b| (b.expert, b.xs.rows())).collect();
        let region: Vec<f32> = batches
            .iter()
            .flat_map(|b| b.xs.as_slice().iter().copied())
            .collect();
        let bits = |vals: &[f32]| vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>();

        let expect_fwd: Vec<f32> = s
            .forward_block(0, &batches)
            .iter()
            .flat_map(|t| t.as_slice().iter().copied())
            .collect();
        let expect_bwd: Vec<f32> = s
            .backward_block(0, &batches)
            .iter()
            .flat_map(|t| t.as_slice().iter().copied())
            .collect();

        let mut out = Vec::new();
        s.forward_rows(0, cfg.dim, &parts, &region, &mut out);
        assert_eq!(bits(&out), bits(&expect_fwd));
        out.clear();
        s.backward_rows(0, cfg.dim, &parts, &region, &mut out);
        assert_eq!(bits(&out), bits(&expect_bwd));

        // A second call draws its input buffers from the recycled pool.
        assert_eq!(s.packed_pool.len(), parts.len());
        out.clear();
        s.forward_rows(0, cfg.dim, &parts, &region, &mut out);
        assert_eq!(bits(&out), bits(&expect_fwd));
    }

    #[test]
    #[should_panic(expected = "packed region does not match")]
    fn ragged_packed_region_panics() {
        let mut s = store();
        let cfg = ModelConfig::test_small();
        let mut out = Vec::new();
        s.forward_rows(0, cfg.dim, &[(0, 2)], &[0.0; 3], &mut out);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn taking_twice_panics() {
        let mut s = store();
        s.take(0, 0);
        s.take(0, 0);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_insert_panics() {
        let mut s = store();
        let ffn = s.take(0, 1);
        s.insert(0, 0, ffn);
    }
}

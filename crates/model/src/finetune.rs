//! LoRA fine-tuning setup and a single-process fine-tuning loop.
//!
//! Matches the paper's fine-tuning recipe (§V-A): LoRA on **all linear
//! layers except the gating mechanism** with `r = 8`, `α = 16`; AdamW with
//! learning rate `3e-5`, betas `[0.8, 0.999]`, `ε = 1e-8`, weight decay
//! `3e-7`; batch size 8. The distributed runtime drives the same model; the
//! loop here is the single-process reference used for parity tests.

use vela_data::{CharTokenizer, Corpus, TokenDataset};
use vela_nn::optim::{AdamW, AdamWConfig};
use vela_nn::param::Module;
use vela_tensor::rng::DetRng;

use crate::model::{MoeModel, StepStats};
use crate::provider::LocalExpertStore;

/// LoRA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoraConfig {
    /// Adapter rank `r`.
    pub rank: usize,
    /// Scaling numerator `α` (effective scale is `α / r`).
    pub alpha: f32,
}

impl Default for LoraConfig {
    /// The paper's configuration: `r = 8`, `α = 16`.
    fn default() -> Self {
        LoraConfig {
            rank: 8,
            alpha: 16.0,
        }
    }
}

/// Freezes a pre-trained model + expert population and attaches LoRA
/// adapters everywhere except the gate, in place.
///
/// After this call the only trainable parameters are adapter matrices —
/// in the backbone (attention projections, LM head) and in every expert
/// (gate/up/down projections of the SwiGLU FFN).
pub fn prepare_for_finetune(
    model: &mut MoeModel,
    experts: &mut LocalExpertStore,
    lora: LoraConfig,
    rng: &mut DetRng,
) {
    model.freeze_all();
    experts.freeze_base();
    model.attach_lora(lora.rank, lora.alpha, &mut rng.fork(1));
    experts.attach_lora(lora.rank, lora.alpha, &mut rng.fork(2));
}

/// Hyper-parameters for a fine-tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneConfig {
    /// Optimizer steps (the paper runs 500).
    pub steps: usize,
    /// Sequences per batch (the paper uses 8).
    pub batch_size: usize,
    /// The target corpus.
    pub corpus: Corpus,
    /// Characters of corpus to generate.
    pub corpus_chars: usize,
    /// LoRA configuration.
    pub lora: LoraConfig,
    /// Optimizer configuration.
    pub optim: AdamWConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            steps: 500,
            batch_size: 8,
            corpus: Corpus::TinyShakespeare,
            corpus_chars: 100_000,
            lora: LoraConfig::default(),
            optim: AdamWConfig::default(),
            seed: 31,
        }
    }
}

/// Runs single-process LoRA fine-tuning, returning per-step statistics.
///
/// The model and experts must already be prepared with
/// [`prepare_for_finetune`]. Deterministic given equal inputs.
pub fn finetune(
    model: &mut MoeModel,
    experts: &mut LocalExpertStore,
    cfg: &FinetuneConfig,
) -> Vec<StepStats> {
    let tokenizer = CharTokenizer::new();
    let text = cfg.corpus.generate(cfg.corpus_chars, cfg.seed);
    let dataset = TokenDataset::from_text(&tokenizer, &text);
    let seq_len = model.config().seq_len;

    let mut opt_model = AdamW::new(cfg.optim);
    let mut opt_experts = AdamW::new(cfg.optim);
    let mut batch_rng = DetRng::new(cfg.seed ^ 0xF1E7);

    let mut stats = Vec::with_capacity(cfg.steps);
    for i in 0..cfg.steps {
        vela_obs::step_begin(i as u64 + 1);
        let _span = vela_obs::span("model.finetune.step");
        let batch = dataset.sample_batch(cfg.batch_size, seq_len, &mut batch_rng);
        experts.zero_grad();
        let step = {
            let _fb = vela_obs::span("model.finetune.fwd_bwd");
            model.train_step(
                &batch.inputs,
                &batch.targets,
                batch.batch_size,
                batch.seq_len,
                experts,
            )
        };
        {
            let _opt = vela_obs::span("model.finetune.optimizer");
            opt_model.step(model);
            opt_experts.step(experts);
        }
        stats.push(step);
    }
    vela_obs::flush();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainConfig};
    use crate::ModelConfig;

    fn pretrained() -> (MoeModel, LocalExpertStore) {
        let mut cfg = ModelConfig::test_small();
        cfg.vocab = CharTokenizer::new().vocab_size();
        let p = pretrain(
            &cfg,
            &PretrainConfig {
                steps: 30,
                batch_size: 4,
                corpus_chars: 20_000,
                ..PretrainConfig::default()
            },
        );
        (p.model, p.experts)
    }

    #[test]
    fn prepare_leaves_only_lora_trainable() {
        let (mut model, mut experts) = pretrained();
        prepare_for_finetune(
            &mut model,
            &mut experts,
            LoraConfig::default(),
            &mut DetRng::new(1),
        );
        model.visit_params(&mut |p| {
            assert_eq!(p.is_trainable(), p.name().contains("lora"), "{}", p.name());
        });
        experts.visit_params(&mut |p| {
            assert_eq!(p.is_trainable(), p.name().contains("lora"), "{}", p.name());
        });
        assert!(model.trainable_param_count() > 0);
        assert!(experts.trainable_param_count() > 0);
    }

    #[test]
    fn lora_is_a_small_fraction_of_params() {
        let (mut model, mut experts) = pretrained();
        prepare_for_finetune(
            &mut model,
            &mut experts,
            LoraConfig {
                rank: 2,
                alpha: 4.0,
            },
            &mut DetRng::new(1),
        );
        let total = model.param_count() + experts.param_count();
        let trainable = model.trainable_param_count() + experts.trainable_param_count();
        assert!(
            (trainable as f32) < 0.5 * total as f32,
            "trainable {trainable} of {total}"
        );
    }

    #[test]
    fn finetuning_runs_and_reduces_loss() {
        let (mut model, mut experts) = pretrained();
        prepare_for_finetune(
            &mut model,
            &mut experts,
            LoraConfig {
                rank: 4,
                alpha: 8.0,
            },
            &mut DetRng::new(2),
        );
        let cfg = FinetuneConfig {
            steps: 30,
            batch_size: 4,
            corpus: Corpus::TinyShakespeare,
            corpus_chars: 20_000,
            optim: AdamWConfig {
                lr: 3e-3, // scaled up for the micro model so 30 steps move
                ..AdamWConfig::default()
            },
            ..FinetuneConfig::default()
        };
        let stats = finetune(&mut model, &mut experts, &cfg);
        assert_eq!(stats.len(), 30);
        let head: f32 = stats[..5].iter().map(|s| s.loss).sum::<f32>() / 5.0;
        let tail: f32 = stats[25..].iter().map(|s| s.loss).sum::<f32>() / 5.0;
        assert!(tail < head, "fine-tuning should adapt: {head} -> {tail}");
        // Aux loss is disabled in fine-tuning.
        assert!(stats.iter().all(|s| s.aux_loss == 0.0));
    }

    #[test]
    fn finetune_is_deterministic() {
        let build = || {
            let (mut model, mut experts) = pretrained();
            prepare_for_finetune(
                &mut model,
                &mut experts,
                LoraConfig {
                    rank: 2,
                    alpha: 4.0,
                },
                &mut DetRng::new(3),
            );
            let cfg = FinetuneConfig {
                steps: 5,
                batch_size: 2,
                corpus_chars: 10_000,
                ..FinetuneConfig::default()
            };
            finetune(&mut model, &mut experts, &cfg)
                .iter()
                .map(|s| s.loss)
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn default_lora_matches_paper() {
        let lora = LoraConfig::default();
        assert_eq!(lora.rank, 8);
        assert_eq!(lora.alpha, 16.0);
        let ft = FinetuneConfig::default();
        assert_eq!(ft.steps, 500);
        assert_eq!(ft.batch_size, 8);
    }
}

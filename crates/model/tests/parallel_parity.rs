//! Bitwise parity for the concurrent per-expert dispatch in `MoeBlock`.
//!
//! Forward and backward group tokens by expert and run the expert FFNs in
//! parallel; the weighted combine back into token rows stays serial in
//! slot order. The block must therefore produce identical outputs,
//! identical gradients, and identical routing decisions at any thread
//! count.

use vela_model::{LocalExpertStore, ModelConfig, MoeBlock, RoutingInfo};
use vela_tensor::parallel::{with_pool, ThreadPool};
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Many experts + enough tokens that the parallel dispatch sees several
/// non-trivial groups per pass.
fn wide_config() -> ModelConfig {
    ModelConfig {
        vocab: 64,
        dim: 32,
        heads: 4,
        kv_heads: 4,
        ffn_hidden: 48,
        blocks: 1,
        experts: 8,
        top_k: 2,
        seq_len: 64,
        aux_loss_weight: 1e-2,
    }
}

struct Pass {
    out: Vec<u32>,
    grad_in: Vec<u32>,
    routing: RoutingInfo,
}

/// One forward+backward pass on a freshly seeded block/store pair under a
/// `threads`-lane pool.
fn run(cfg: &ModelConfig, tokens: usize, threads: usize, seed: u64) -> Pass {
    let mut rng = DetRng::new(seed);
    let mut store = LocalExpertStore::new(cfg, &mut rng);
    let mut block = MoeBlock::new(
        0,
        cfg.dim,
        cfg.experts,
        cfg.top_k,
        cfg.aux_loss_weight,
        &mut rng,
    );
    let x = Tensor::uniform((tokens, cfg.dim), -1.0, 1.0, &mut rng);
    let g = Tensor::uniform((tokens, cfg.dim), -1.0, 1.0, &mut rng);
    let pool = ThreadPool::new(threads);
    with_pool(&pool, || {
        let y = block.forward(&x, &mut store);
        let gx = block.backward(&g, &mut store);
        Pass {
            out: bits(&y),
            grad_in: bits(&gx),
            routing: block.last_routing().expect("routing info").clone(),
        }
    })
}

fn assert_same(a: &Pass, b: &Pass, what: &str) {
    assert_eq!(a.out, b.out, "{what}: forward output");
    assert_eq!(a.grad_in, b.grad_in, "{what}: input gradient");
    assert_eq!(
        a.routing.selected, b.routing.selected,
        "{what}: selected experts"
    );
    assert_eq!(
        a.routing
            .selected_probs
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        b.routing
            .selected_probs
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        "{what}: routing probs"
    );
    assert_eq!(
        a.routing.counts, b.routing.counts,
        "{what}: per-expert counts"
    );
    assert_eq!(
        a.routing.dropped, b.routing.dropped,
        "{what}: capacity drops"
    );
}

#[test]
fn moe_block_is_bitwise_identical_at_any_thread_count() {
    let cfg = wide_config();
    let reference = run(&cfg, 64, 1, 5);
    for threads in [2, 3, 4, 8] {
        let got = run(&cfg, 64, threads, 5);
        assert_same(&got, &reference, &format!("{threads} threads"));
    }
}

#[test]
fn moe_block_parity_holds_on_the_small_test_config() {
    let cfg = ModelConfig::test_small();
    let reference = run(&cfg, 9, 1, 17);
    for threads in [2, 6] {
        let got = run(&cfg, 9, threads, 17);
        assert_same(&got, &reference, &format!("{threads} threads"));
    }
}

#[test]
fn repeated_parallel_passes_are_self_consistent() {
    // The same pool reused across passes must not leak state between
    // parallel sections: two identical runs under the same thread count
    // agree with each other bit-for-bit.
    let cfg = wide_config();
    let a = run(&cfg, 48, 4, 29);
    let b = run(&cfg, 48, 4, 29);
    assert_same(&a, &b, "repeat @ 4 threads");
}

//! Properties of the CSR-style gather → compute → scatter dispatch in
//! `MoeBlock`.
//!
//! The grouped dispatch must be a pure reordering: running each token
//! through its selected experts one at a time (no grouping at all) must
//! give bitwise-identical outputs, and permuting the token batch must
//! permute the outputs and nothing else. Both hold because every kernel on
//! the path accumulates per output row in a fixed order — grouping only
//! changes *which rows sit next to each other*, never the arithmetic
//! inside a row.

use vela_model::{LocalExpertStore, ModelConfig, MoeBlock};
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

fn cfg() -> ModelConfig {
    ModelConfig {
        vocab: 64,
        dim: 24,
        heads: 4,
        kv_heads: 4,
        ffn_hidden: 40,
        blocks: 1,
        experts: 8,
        top_k: 2,
        seq_len: 64,
        aux_loss_weight: 0.0,
    }
}

/// Fresh, identically seeded block + store (expert weights and gate are
/// bit-identical across calls).
fn fresh(cfg: &ModelConfig) -> (MoeBlock, LocalExpertStore) {
    let mut rng = DetRng::new(40);
    let store = LocalExpertStore::new(cfg, &mut rng);
    let block = MoeBlock::new(0, cfg.dim, cfg.experts, cfg.top_k, 0.0, &mut rng);
    (block, store)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn grouped_dispatch_matches_ungrouped_per_token_path_bitwise() {
    let cfg = cfg();
    let tokens = 19;
    let x = Tensor::uniform((tokens, cfg.dim), -1.0, 1.0, &mut DetRng::new(41));

    let (mut block, mut store) = fresh(&cfg);
    let y = block.forward(&x, &mut store);
    let info = block.last_routing().unwrap().clone();

    // Ungrouped reference: one expert call per single-token row, on a
    // fresh same-seed store, combined in ascending expert order exactly
    // as the block's scatter does.
    let (_, mut ref_store) = fresh(&cfg);
    for t in 0..tokens {
        let sel = &info.selected[t * cfg.top_k..(t + 1) * cfg.top_k];
        let probs = &info.selected_probs[t * cfg.top_k..(t + 1) * cfg.top_k];
        let sum: f32 = probs.iter().sum();
        let xt = x.gather_rows(&[t]);
        let mut row = vec![0.0f32; cfg.dim];
        let mut order: Vec<usize> = (0..cfg.top_k).collect();
        order.sort_by_key(|&j| sel[j]);
        for &j in &order {
            let w = probs[j] / sum;
            let out = ref_store.expert_mut(0, sel[j]).forward(&xt);
            for (d, &s) in row.iter_mut().zip(out.row(0)) {
                *d += w * s;
            }
        }
        assert_eq!(
            y.row(t).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "token {t}: grouped dispatch deviates from per-token reference"
        );
    }
}

#[test]
fn dispatch_is_permutation_equivariant_bitwise() {
    let cfg = cfg();
    let tokens = 23;
    let x = Tensor::uniform((tokens, cfg.dim), -1.0, 1.0, &mut DetRng::new(42));

    // A fixed non-trivial permutation (deterministic Fisher–Yates).
    let mut perm: Vec<usize> = (0..tokens).collect();
    let mut rng = DetRng::new(43);
    for i in (1..tokens).rev() {
        let j = (rng.next_u64() as usize) % (i + 1);
        perm.swap(i, j);
    }

    let (mut block_a, mut store_a) = fresh(&cfg);
    let y = block_a.forward(&x, &mut store_a);
    let g = Tensor::uniform((tokens, cfg.dim), -1.0, 1.0, &mut DetRng::new(44));
    let gx = block_a.backward(&g, &mut store_a);

    let (mut block_b, mut store_b) = fresh(&cfg);
    let xp = x.gather_rows(&perm);
    let yp = block_b.forward(&xp, &mut store_b);
    let gp = g.gather_rows(&perm);
    let gxp = block_b.backward(&gp, &mut store_b);

    // yp must be exactly y with permuted rows, and likewise for the
    // input gradients (expert grads differ only in accumulation *order*
    // per parameter — not asserted here; the outputs pin the dispatch).
    assert_eq!(bits(&yp), bits(&y.gather_rows(&perm)), "forward rows");
    assert_eq!(bits(&gxp), bits(&gx.gather_rows(&perm)), "gradient rows");

    // Routing metadata permutes consistently: same multiset of selected
    // experts per token.
    let ia = block_a.last_routing().unwrap();
    let ib = block_b.last_routing().unwrap();
    assert_eq!(ia.counts, ib.counts, "per-expert counts are order-free");
    for (pt, &t) in perm.iter().enumerate() {
        assert_eq!(
            ia.selected[t * cfg.top_k..(t + 1) * cfg.top_k],
            ib.selected[pt * cfg.top_k..(pt + 1) * cfg.top_k],
            "token {t} selection moved with the permutation"
        );
    }
}

#[test]
fn repeated_steps_reuse_dispatch_buffers() {
    // Steady-state training steps must not grow the dispatch scratch:
    // after a warm-up step, forward+backward run allocation-free in the
    // block itself (pool hits only). Pinned indirectly: repeated passes
    // stay bitwise self-consistent while buffers are being reused.
    let cfg = cfg();
    let x = Tensor::uniform((17, cfg.dim), -1.0, 1.0, &mut DetRng::new(45));
    let g = Tensor::uniform((17, cfg.dim), -1.0, 1.0, &mut DetRng::new(46));

    let (mut block, mut store) = fresh(&cfg);
    let (mut block_ref, mut store_ref) = fresh(&cfg);

    // Reference: a single fresh pass.
    let y_ref = block_ref.forward(&x, &mut store_ref);

    // Same pass repeated through reused scratch; forward must not drift.
    // (Only forward is compared: backward mutates expert params.)
    for step in 0..3 {
        let y = block.forward(&x, &mut store);
        assert_eq!(bits(&y), bits(&y_ref), "step {step} drifted");
        let gx = block.backward(&g, &mut store);
        assert_eq!(gx.shape().as_2d(), (17, cfg.dim));
        // Roll the param updates back so every step sees identical
        // weights.
        use vela_nn::param::Module;
        store.visit_params(&mut |p| p.grad.fill_zero());
        block.visit_params(&mut |p| p.grad.fill_zero());
    }
}

//! Shared harness code for the figure-reproduction binaries.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3` | Fig. 3(a–c): expert locality measurement study |
//! | `theorem1` | Theorem 1: empirical softmax-stability bound check |
//! | `fig5` | Fig. 5(a–d): cross-node traffic per step, 4 settings × 4 strategies |
//! | `fig6` | Fig. 6(a–d): average fine-tuning step time |
//! | `fig7` | Fig. 7(a,b): expert access heatmaps |
//! | `ablation_solver` | LP vs greedy vs exact optimality gap (DESIGN.md ablation) |
//! | `ablation_bandwidth` | benefit vs inter/intra bandwidth ratio |
//! | `ablation_skew` | benefit vs access-distribution concentration |
//! | `ablation_drift` | stale-profile robustness |
//! | `ablation_capacity` | benefit vs per-worker capacity pressure |
//! | `ablation_heterogeneous` | placement on heterogeneous inter-node links |
//!
//! Run with e.g. `cargo run --release -p vela-bench --bin fig5`.

pub mod alloc;

use vela::prelude::*;

/// The two evaluation models (§V-A). Both share the Mixtral-8x7B shape;
/// GritLM is a Mixtral derivative, modelled here as a different
/// pre-training seed (different expert specialisation, same architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalModel {
    /// Mixtral-8x7B analogue.
    Mixtral,
    /// GritLM-8x7B analogue.
    GritLm,
}

impl EvalModel {
    /// All evaluation models.
    pub const ALL: [EvalModel; 2] = [EvalModel::Mixtral, EvalModel::GritLm];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvalModel::Mixtral => "Mixtral",
            EvalModel::GritLm => "GritLM",
        }
    }

    /// The simulated full-scale shape.
    pub fn spec(self) -> MoeSpec {
        match self {
            EvalModel::Mixtral => MoeSpec::mixtral_8x7b(),
            EvalModel::GritLm => MoeSpec::gritlm_8x7b(),
        }
    }

    /// Pre-training seed of the micro proxy.
    pub fn seed(self) -> u64 {
        match self {
            EvalModel::Mixtral => 1001,
            EvalModel::GritLm => 2002,
        }
    }
}

/// The two fine-tuning datasets of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalDataset {
    /// WikiText analogue (narrow domain, concentrated access).
    WikiText,
    /// Alpaca analogue (broad instruction mix, more uniform access).
    Alpaca,
}

impl EvalDataset {
    /// All evaluation datasets.
    pub const ALL: [EvalDataset; 2] = [EvalDataset::WikiText, EvalDataset::Alpaca];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvalDataset::WikiText => "WikiText",
            EvalDataset::Alpaca => "Alpaca",
        }
    }

    /// The synthetic corpus backing this dataset.
    pub fn corpus(self) -> Corpus {
        match self {
            EvalDataset::WikiText => Corpus::WikiText,
            EvalDataset::Alpaca => Corpus::Alpaca,
        }
    }
}

/// How many pre-training steps the micro proxies get in the harnesses
/// (calibrated: beyond ~600 steps the measured locality concentration
/// saturates; see EXPERIMENTS.md).
pub const MICRO_PRETRAIN_STEPS: usize = 600;

/// Pre-trains the micro proxy of `model`, caching the result under
/// `target/vela-cache/` so the fig5/fig6/fig7 harnesses share one
/// pre-training run per model (delete the cache to force a re-train).
pub fn pretrain_micro(model: EvalModel) -> (MoeModel, LocalExpertStore) {
    use vela::model::checkpoint;
    let cfg = ModelConfig::mixtral_micro(CharTokenizer::new().vocab_size());
    let dir = std::path::PathBuf::from("target/vela-cache");
    let tag = format!("micro-{}-{}", model.seed(), MICRO_PRETRAIN_STEPS);
    let model_path = dir.join(format!("{tag}-model.ckpt"));
    let experts_path = dir.join(format!("{tag}-experts.ckpt"));

    let pcfg = PretrainConfig {
        steps: MICRO_PRETRAIN_STEPS,
        batch_size: 8,
        corpus_chars: 120_000,
        seed: model.seed(),
        ..PretrainConfig::default()
    };
    if model_path.exists() && experts_path.exists() {
        // Rebuild the architecture exactly as pretrain() does, then load.
        let mut rng = DetRng::new(pcfg.seed);
        let (mut m, mut e) = MoeModel::new(&cfg, &mut rng);
        let ok = checkpoint::load_from_path(&mut m, &model_path).is_ok()
            && checkpoint::load_from_path(&mut e, &experts_path).is_ok();
        if ok {
            vela_obs::info!("using cached pre-trained micro model {tag}");
            return (m, e);
        }
        vela_obs::warn!("cache for {tag} unreadable; re-training");
    }
    let pre = pretrain(&cfg, &pcfg);
    let (mut m, mut e) = (pre.model, pre.experts);
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = checkpoint::save_to_path(&mut m, &model_path);
        let _ = checkpoint::save_to_path(&mut e, &experts_path);
    }
    (m, e)
}

/// Measures the locality profile of a (pre-trained, LoRA-prepared) micro
/// model on `dataset`, then upscales it to the full evaluation shape.
pub fn measured_profile(
    model: &mut MoeModel,
    experts: &mut LocalExpertStore,
    dataset: EvalDataset,
    spec: &MoeSpec,
    seed: u64,
) -> LocalityProfile {
    let tok = CharTokenizer::new();
    let text = dataset.corpus().generate(60_000, seed);
    let data = TokenDataset::from_text(&tok, &text);
    let micro = measure_locality(model, experts, &data, 8, 24);
    micro.upscale(spec.blocks, spec.experts, seed ^ 0xBEEF)
}

/// Builds the full-scale locality profile for one evaluation setting
/// (pre-trains the micro proxy internally; for multi-dataset use, prefer
/// [`pretrain_micro`] + [`measured_profile`]).
pub fn setting_profile(model: EvalModel, dataset: EvalDataset) -> LocalityProfile {
    let (mut m, mut e) = pretrain_micro(model);
    measured_profile(&mut m, &mut e, dataset, &model.spec(), model.seed())
}

/// The strategies compared in Figs. 5–6, in the paper's legend order.
pub fn eval_strategies() -> Vec<Strategy> {
    vec![
        Strategy::ExpertParallel,
        Strategy::Sequential,
        Strategy::Random { seed: 77 },
        Strategy::Vela,
    ]
}

/// Builds the placement problem for a full-scale setting on the paper
/// testbed.
pub fn scale_problem(
    profile: &LocalityProfile,
    spec: &MoeSpec,
    topology: &Topology,
    scale: &ScaleConfig,
) -> PlacementProblem {
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let caps = vela::runtime::virtual_engine::capacity_from_memory(topology, &workers, spec, 0.5);
    PlacementProblem::new(
        topology.clone(),
        DeviceId(0),
        workers,
        profile.to_matrix(),
        (scale.tokens() * spec.top_k) as f64,
        spec.token_bytes(),
        caps,
    )
}

/// Runs one strategy of one setting for `steps` steps and returns per-step
/// metrics (EP runs its own engine; everything else runs the master–worker
/// virtual engine). Single-owner placements only; the figure binaries use
/// [`run_strategy_with`] to honor `VELA_REPLICATION`.
pub fn run_strategy(
    strategy: Strategy,
    profile: &LocalityProfile,
    spec: &MoeSpec,
    scale: &ScaleConfig,
    steps: usize,
) -> Vec<StepMetrics> {
    run_strategy_with(
        strategy,
        ReplicationConfig::Off,
        profile,
        spec,
        scale,
        steps,
    )
    .0
}

/// [`run_strategy`] with a replication knob: the strategy's single-owner
/// placement is expanded into a [`ReplicatedPlacement`] by `replication`
/// (degree 1 under [`ReplicationConfig::Off`] — bitwise-identical to the
/// plain run) before the engine launches. Returns the per-step metrics
/// and, for engine-backed strategies, the run's
/// [`ReplicationSummary`] (replica degrees, sync bytes/step, and the
/// routed-row straggler index). EP simulates its own all-to-all and has
/// no expert placement to replicate, so its summary is `None`.
pub fn run_strategy_with(
    strategy: Strategy,
    replication: ReplicationConfig,
    profile: &LocalityProfile,
    spec: &MoeSpec,
    scale: &ScaleConfig,
    steps: usize,
) -> (Vec<StepMetrics>, Option<ReplicationSummary>) {
    let topology = Topology::paper_testbed();
    match strategy {
        Strategy::ExpertParallel => {
            let devices: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
            let mut ep = EpEngine::new(topology, devices, profile.clone(), scale.clone());
            (ep.run(steps), None)
        }
        _ => {
            let problem = scale_problem(profile, spec, &topology, scale);
            let placement = replication.apply(&strategy.place(&problem), &problem);
            let (max_degree, avg_degree) = (placement.max_degree(), placement.avg_degree());
            let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
            let mut engine = VirtualEngine::launch(
                topology,
                DeviceId(0),
                workers,
                placement,
                profile.clone(),
                scale.clone(),
            );
            let metrics = engine.run(steps);
            let summary = ReplicationSummary {
                max_degree,
                avg_degree,
                sync_bytes_per_step: RunSummary::avg_sync_bytes(&metrics),
                straggler_index: engine.straggler_index(),
            };
            engine.shutdown();
            (metrics, Some(summary))
        }
    }
}

/// Summarizes a strategy's run with the transport label it actually used:
/// EP simulates its all-to-all locally (no pluggable backend), everything
/// else rode whatever `VELA_TRANSPORT` selected.
pub fn summarize_strategy(strategy: Strategy, metrics: &[StepMetrics]) -> RunSummary {
    let summary = RunSummary::from_steps(metrics);
    match strategy {
        Strategy::ExpertParallel => summary.with_transport("local"),
        _ => summary,
    }
}

/// The counters a [`PhaseAttribution`] is built from, in struct field
/// order ending with the exchange wall clock and the stall count.
const ATTRIBUTION_COUNTERS: [&str; 7] = [
    "runtime.pipeline.serialize_us",
    "runtime.pipeline.inflight_us",
    "runtime.pipeline.stall_us",
    "runtime.worker.serve_us",
    "runtime.pipeline.combine_us",
    "runtime.pipeline.exchange_us",
    "runtime.pipeline.stalls",
];

/// Captures the pipeline/worker timing counters before a run so their
/// deltas can be folded into the run's [`RunSummary`] as a measured
/// [`PhaseAttribution`]. The counters are process-global: do not overlap
/// two probed runs.
pub struct AttributionProbe {
    base: Vec<u64>,
}

impl AttributionProbe {
    /// Snapshots the attribution counters now.
    pub fn start() -> Self {
        AttributionProbe {
            base: ATTRIBUTION_COUNTERS
                .iter()
                .map(|n| vela_obs::counter(n).get())
                .collect(),
        }
    }

    /// Per-step counter deltas since [`AttributionProbe::start`]. `None`
    /// when observability is off or no timed exchange ran (the counters
    /// never advanced).
    pub fn finish(self, steps: usize) -> Option<PhaseAttribution> {
        if !vela_obs::enabled() || steps == 0 {
            return None;
        }
        let delta: Vec<f64> = ATTRIBUTION_COUNTERS
            .iter()
            .zip(&self.base)
            .map(|(n, &base)| vela_obs::counter(n).get().saturating_sub(base) as f64 / steps as f64)
            .collect();
        if delta[5] == 0.0 {
            return None; // no exchange wall time measured
        }
        Some(PhaseAttribution {
            serialize_us: delta[0],
            inflight_us: delta[1],
            stall_us: delta[2],
            compute_us: delta[3],
            combine_us: delta[4],
            exchange_us: delta[5],
            stalls: delta[6],
        })
    }
}

/// Formats bytes as mebibytes with one decimal.
pub fn mb(bytes: f64) -> String {
    format!("{:.1}", bytes / (1024.0 * 1024.0))
}

/// Dependency-free micro-benchmark timing: warmup, auto-calibrated batch
/// sizes, best-of-samples reporting. Replaces the former Criterion
/// harness (the build environment has no crates.io access).
pub mod microbench {
    use std::hint::black_box;
    use std::time::Instant;

    /// Best (minimum) seconds per iteration of `f`, measured over
    /// `samples` batches after one warmup batch. The minimum estimates the
    /// noise floor — scheduler preemption and allocator hiccups only ever
    /// inflate a sample, so the smallest one is the most repeatable,
    /// which keeps ratios between measurements stable on busy hosts. The
    /// batch size is calibrated so one batch takes roughly
    /// `target_batch_secs`.
    pub fn secs_per_iter<R>(
        samples: usize,
        target_batch_secs: f64,
        mut f: impl FnMut() -> R,
    ) -> f64 {
        // Calibrate: grow the batch until it is long enough to time.
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= target_batch_secs || batch >= 1 << 20 {
                break;
            }
            let growth = if elapsed > 1e-6 {
                ((target_batch_secs / elapsed) * 1.2).ceil() as usize
            } else {
                16
            };
            batch = (batch * growth.max(2)).min(1 << 20);
        }
        (0..samples.max(1))
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() / batch as f64
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// One named measurement, for the report/JSON emitters.
    #[derive(Debug, Clone)]
    pub struct Measurement {
        /// Benchmark id, e.g. `matmul_256`.
        pub name: String,
        /// Best seconds per iteration.
        pub secs: f64,
    }

    /// Measures `f` and prints a one-line report.
    pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Measurement {
        let secs = secs_per_iter(5, 0.05, f);
        let m = Measurement {
            name: name.to_string(),
            secs,
        };
        println!("{:<36} {}", m.name, format_secs(m.secs));
        m
    }

    /// Human-friendly duration formatting.
    pub fn format_secs(secs: f64) -> String {
        if secs >= 1.0 {
            format!("{secs:.3} s")
        } else if secs >= 1e-3 {
            format!("{:.3} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            format!("{:.3} µs", secs * 1e6)
        } else {
            format!("{:.1} ns", secs * 1e9)
        }
    }
}

/// Renders a probability as a heatmap cell (darker = hotter), used by the
/// fig7 ASCII heatmaps.
pub fn heat_cell(p: f64) -> char {
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
    let idx = ((p * 2.5).min(0.999) * RAMP.len() as f64) as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_enums_cover_the_grid() {
        assert_eq!(EvalModel::ALL.len() * EvalDataset::ALL.len(), 4);
        assert_eq!(EvalModel::Mixtral.spec().blocks, 32);
        assert_eq!(EvalDataset::WikiText.corpus(), Corpus::WikiText);
        assert_ne!(EvalModel::Mixtral.seed(), EvalModel::GritLm.seed());
    }

    #[test]
    fn heat_cells_are_monotone() {
        let cells: Vec<char> = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.9]
            .iter()
            .map(|&p| heat_cell(p))
            .collect();
        const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
        let ranks: Vec<usize> = cells
            .iter()
            .map(|c| RAMP.iter().position(|r| r == c).unwrap())
            .collect();
        for w in ranks.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn mb_formats() {
        assert_eq!(mb(1048576.0), "1.0");
        assert_eq!(mb(866.0 * 1048576.0), "866.0");
    }

    #[test]
    fn strategies_list_matches_paper_order() {
        let labels: Vec<&str> = eval_strategies().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["EP", "Sequential", "Random", "Vela"]);
    }
}

//! Heap-allocation counting for the benchmark binaries.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! `alloc`/`realloc` call process-wide. A benchmark binary registers it
//! with `#[global_allocator]` and samples [`allocations`] around a
//! measured iteration to report *allocations per step* — the metric the
//! zero-allocation hot-path work is held to (see `BENCH_kernels.json`).
//!
//! Counting is a single relaxed atomic increment per allocation, cheap
//! enough to leave enabled while timing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vela_obs::LazyCounter;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Allocation calls observed by [`count_allocations`] windows, mirrored
/// into the vela-obs counter registry (the allocator itself cannot call
/// into the registry — registration allocates).
static OBS_ALLOC_CALLS: LazyCounter = LazyCounter::new("bench.alloc.calls");
/// Bytes requested inside [`count_allocations`] windows.
static OBS_ALLOC_BYTES: LazyCounter = LazyCounter::new("bench.alloc.bytes");

/// A [`System`]-backed allocator that counts allocation calls.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocation calls (`alloc` + `realloc`) since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Allocation calls made while running `f` once.
///
/// The per-window deltas (calls and bytes) are also routed into the
/// vela-obs counters `bench.alloc.calls` / `bench.alloc.bytes` when
/// tracing is enabled, so allocation behaviour shows up in trace
/// summaries next to the span data.
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocations();
    let bytes_before = allocated_bytes();
    let result = f();
    let delta = allocations() - before;
    OBS_ALLOC_CALLS.add(delta);
    OBS_ALLOC_BYTES.add(allocated_bytes() - bytes_before);
    (delta, result)
}

//! Summarises a vela JSONL trace (`VELA_TRACE=jsonl`).
//!
//! Reads the trace written by `VELA_TRACE_OUT` and prints:
//!
//! * per-span totals (count, total time, mean) and a top-N *self-time*
//!   table (time in a span minus time in its children) — the per-step
//!   attribution the paper's breakdowns are built from;
//! * per-expert token counts per MoE block, re-deriving the Fig. 3
//!   locality heat rows from the `"x"` (expert-rows) events;
//! * final counter values and histogram snapshots.
//!
//! With `--check` it instead validates the trace — schema-valid lines,
//! per-lane monotone timestamps, balanced enter/exit, complete dispatch →
//! compute → result flow chains, (whenever the trace contains
//! broker/virtual exchange spans) the presence of the
//! `runtime.pipeline.*` per-chunk spans, and (on merged distributed
//! traces) ≥90% attribution coverage of exchange wall time — exiting
//! non-zero on any violation (used by `scripts/verify.sh`).
//!
//! With `merge` it joins a process-mode run's master trace with its
//! `FILE.worker{i}` siblings into one timeline: worker timestamps are
//! rebased onto the master clock using the handshake's minimum-RTT
//! offset samples, every record gains a process lane (`pid`), and the
//! result is written both as mergeable JSONL (`FILE.merged`) and as a
//! Chrome trace (`FILE.merged.json`) whose flow arrows connect each
//! dispatch to its worker compute span and result. A per-step phase
//! attribution report (serialize / wire / worker compute / stall /
//! combine, per-worker busy time, straggler index) is printed after the
//! merge.
//!
//! Usage: `trace_summary [--check | merge] [--top N] FILE`

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

use vela_obs::reader::{
    attribute, clock_table, merge_traces, parse_line, to_jsonl, validate, Attribution, RawEvent,
};

fn usage() -> ExitCode {
    eprintln!("usage: trace_summary [--check | merge] [--top N] FILE");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut check = false;
    let mut merge = false;
    let mut top = 10usize;
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "merge" if file.is_none() => merge = true,
            "--top" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => return usage(),
            },
            other if file.is_none() && !other.starts_with('-') => file = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = file else { return usage() };
    if check && merge {
        return usage();
    }
    let events = match load_trace(&path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("trace_summary: {e}");
            return ExitCode::FAILURE;
        }
    };

    if merge {
        run_merge(&path, events)
    } else if check {
        run_check(&events)
    } else {
        summarize(&events, top);
        ExitCode::SUCCESS
    }
}

fn load_trace(path: &str) -> Result<Vec<RawEvent>, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut events = Vec::new();
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| format!("read error at {path}:{}: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(&line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
    }
    Ok(events)
}

fn run_check(events: &[RawEvent]) -> ExitCode {
    let stats = match validate(events) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("trace INVALID: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_pipeline_instrumentation(events) {
        eprintln!("trace INVALID: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = check_replica_shares(events) {
        eprintln!("trace INVALID: {e}");
        return ExitCode::FAILURE;
    }
    // A merged distributed trace (multiple process lanes, flow-correlated
    // exchanges) must attribute ≥90% of the exchange wall time to the
    // serialize/inflight/combine phases; less means the pipeline
    // instrumentation lost track of where a step's time went.
    let distributed = events.iter().any(|ev| ev.pid != 0);
    if distributed && stats.flows > 0 {
        let attr = attribute(events);
        if attr.exchange_us > 0 && attr.coverage() < 0.9 {
            eprintln!(
                "trace INVALID: attribution covers only {:.1}% of exchange wall time (< 90%)",
                attr.coverage() * 100.0
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "trace OK: {} events, {} spans, {} flows, {} threads, {:.3} ms span of wall time",
        stats.events,
        stats.spans,
        stats.flows,
        stats.threads,
        stats.max_t as f64 / 1e3
    );
    ExitCode::SUCCESS
}

fn run_merge(path: &str, master: Vec<RawEvent>) -> ExitCode {
    let mut workers: Vec<(u64, Vec<RawEvent>)> = Vec::new();
    loop {
        let wpath = format!("{path}.worker{}", workers.len());
        if !std::path::Path::new(&wpath).exists() {
            break;
        }
        match load_trace(&wpath) {
            Ok(events) => workers.push((workers.len() as u64, events)),
            Err(e) => {
                eprintln!("trace_summary: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if workers.is_empty() {
        eprintln!(
            "trace_summary: no {path}.worker0 sibling trace found — merge needs the \
             per-worker traces a traced process-mode (VELA_TRANSPORT=tcp) run writes"
        );
        return ExitCode::FAILURE;
    }
    let clocks = clock_table(&master);
    let n_workers = workers.len();
    let merged = match merge_traces(master, workers) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("trace_summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_jsonl = format!("{path}.merged");
    let out_chrome = format!("{path}.merged.json");
    if let Err(e) = write_merged(&out_jsonl, &out_chrome, &merged, n_workers) {
        eprintln!("trace_summary: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "merged 1 master + {n_workers} worker traces: {} events",
        merged.len()
    );
    for (w, (offset, rtt)) in &clocks {
        println!("  worker {w}: clock offset {offset:+} µs (min rtt {rtt} µs)");
    }
    println!("wrote {out_jsonl} (JSONL) and {out_chrome} (Chrome trace)");
    print_attribution(&attribute(&merged));
    ExitCode::SUCCESS
}

/// Writes the merged timeline as (a) JSONL in the trace's own schema
/// (with `pid` lanes, so `--check` and a re-merge both accept it) and
/// (b) a Chrome `chrome://tracing` / Perfetto JSON array with one
/// process lane per original process and flow arrows between them.
fn write_merged(
    out_jsonl: &str,
    out_chrome: &str,
    merged: &[RawEvent],
    n_workers: usize,
) -> Result<(), String> {
    let mut jf = File::create(out_jsonl).map_err(|e| format!("cannot create {out_jsonl}: {e}"))?;
    for ev in merged {
        jf.write_all(to_jsonl(ev).as_bytes())
            .and_then(|_| jf.write_all(b"\n"))
            .map_err(|e| format!("writing {out_jsonl}: {e}"))?;
    }

    let mut out = String::from("[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"master\"}}",
    );
    for w in 0..n_workers {
        out.push_str(&format!(
            ",\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"worker {w}\"}}}}",
            w + 1
        ));
    }
    for ev in merged {
        if let Some(line) = chrome_record(ev) {
            out.push_str(",\n");
            out.push_str(&line);
        }
    }
    out.push_str("]\n");
    std::fs::write(out_chrome, out).map_err(|e| format!("cannot write {out_chrome}: {e}"))
}

/// One merged record as a Chrome trace event, if it has a Chrome
/// counterpart (histogram and expert-rows records do not).
fn chrome_record(ev: &RawEvent) -> Option<String> {
    let name = ev.name.replace('\\', "\\\\").replace('"', "\\\"");
    match ev.ev.as_str() {
        "b" | "e" => {
            let ph = if ev.ev == "b" { "B" } else { "E" };
            Some(format!(
                "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"ts\":{}}}",
                ev.pid, ev.tid, ev.t
            ))
        }
        "c" => Some(format!(
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\
             \"args\":{{\"value\":{}}}}}",
            ev.pid,
            ev.t,
            ev.value.unwrap_or(0)
        )),
        "f" => {
            let ph = ev.ph.as_deref()?;
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            Some(format!(
                "{{\"name\":\"exchange\",\"cat\":\"exchange\",\"ph\":\"{ph}\",\"id\":{},\
                 \"pid\":{},\"tid\":{},\"ts\":{}{bp}}}",
                ev.corr.unwrap_or(0),
                ev.pid,
                ev.tid,
                ev.t
            ))
        }
        "k" => Some(format!(
            "{{\"name\":\"clock sample\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{},\"tid\":0,\
             \"ts\":{},\"args\":{{\"worker\":{},\"offset_us\":{},\"rtt_us\":{}}}}}",
            ev.pid,
            ev.t,
            ev.worker.unwrap_or(0),
            ev.offset.unwrap_or(0),
            ev.rtt.unwrap_or(0)
        )),
        _ => None,
    }
}

fn print_attribution(attr: &Attribution) {
    let steps = attr.steps.max(1);
    let per = |v: u64| v as f64 / steps as f64;
    println!("\n-- per-step attribution ({} steps) --", attr.steps);
    println!("{:<18} {:>12}", "phase", "µs/step");
    println!("{:<18} {:>12.1}", "serialize", per(attr.serialize_us));
    println!("{:<18} {:>12.1}", "wire", per(attr.wire_us));
    println!("{:<18} {:>12.1}", "worker compute", per(attr.compute_us));
    println!("{:<18} {:>12.1}", "stall", per(attr.stall_us));
    println!("{:<18} {:>12.1}", "combine", per(attr.combine_us));
    println!(
        "{:<18} {:>12.1}   (coverage {:.1}%)",
        "exchange wall",
        per(attr.exchange_us),
        100.0 * attr.coverage()
    );
    if !attr.worker_busy_us.is_empty() {
        let busy: Vec<String> = attr
            .worker_busy_us
            .iter()
            .map(|(w, us)| format!("w{w}:{:.1}", per(*us)))
            .collect();
        println!(
            "worker busy µs/step: {}   (straggler index {:.2})",
            busy.join("  "),
            attr.straggler_index()
        );
    }
}

/// Replica routing data recovered from the trace's `"x"` (expert-rows)
/// events: the broker emits one event per worker (`src: "workerN"`) per
/// routed exchange when the placement holds ≥ 2 replicas of anything,
/// alongside the usual per-exchange totals (`src: "runtime"`).
#[derive(Default)]
struct ReplicaRows {
    /// `(pass, block, expert) -> worker -> rows` from `workerN` events.
    per_worker: BTreeMap<(String, u64, u64), BTreeMap<u64, u64>>,
    /// `(pass, block, expert) -> rows` from the runtime totals.
    totals: BTreeMap<(String, u64, u64), u64>,
}

fn replica_rows(events: &[RawEvent]) -> ReplicaRows {
    let mut out = ReplicaRows::default();
    for ev in events {
        if ev.ev != "x" {
            continue;
        }
        let block = ev.block.unwrap_or(0);
        match ev.src.as_deref() {
            Some(s) if s.starts_with("worker") => {
                let Ok(w) = s["worker".len()..].parse::<u64>() else {
                    continue;
                };
                for &(expert, rows) in &ev.rows {
                    *out.per_worker
                        .entry((ev.name.clone(), block, expert))
                        .or_default()
                        .entry(w)
                        .or_insert(0) += rows;
                }
            }
            Some("runtime") | None => {
                for &(expert, rows) in &ev.rows {
                    *out.totals
                        .entry((ev.name.clone(), block, expert))
                        .or_insert(0) += rows;
                }
            }
            _ => {}
        }
    }
    out
}

/// When the trace carries per-replica routing events, every routed row
/// must be accounted: for each `(pass, block, expert)`, the per-worker
/// shares must sum to exactly the runtime's per-expert total.
fn check_replica_shares(events: &[RawEvent]) -> Result<(), String> {
    let rows = replica_rows(events);
    for (key, workers) in &rows.per_worker {
        let split: u64 = workers.values().sum();
        let total = rows.totals.get(key).copied().unwrap_or(0);
        if split != total {
            let (pass, block, expert) = key;
            return Err(format!(
                "replica shares for block {block} expert {expert} ({pass}) sum to {split}, \
                 runtime total is {total}"
            ));
        }
    }
    Ok(())
}

/// Any trace that records an exchange (a broker or virtual fwd/bwd span)
/// must also record the ring pipeline's per-chunk serialize spans and the
/// exchange-time counter — otherwise the overlap instrumentation has
/// silently regressed.
fn check_pipeline_instrumentation(events: &[RawEvent]) -> Result<(), String> {
    let span_present = |name: &str| events.iter().any(|ev| ev.ev == "b" && ev.name == name);
    let exchanges = [
        "runtime.broker.fwd",
        "runtime.broker.bwd",
        "runtime.virtual.fwd",
        "runtime.virtual.bwd",
    ];
    if !exchanges.iter().any(|s| span_present(s)) {
        return Ok(()); // no exchanges traced, nothing to require
    }
    if !span_present("runtime.pipeline.serialize") {
        return Err(
            "trace has exchange spans but no runtime.pipeline.serialize spans \
             (ring pipeline instrumentation missing)"
                .into(),
        );
    }
    let counter_present = |name: &str| events.iter().any(|ev| ev.ev == "c" && ev.name == name);
    if !counter_present("runtime.pipeline.exchange_us") {
        return Err(
            "trace has exchange spans but no runtime.pipeline.exchange_us counter \
             (pipeline timing counters missing)"
                .into(),
        );
    }
    Ok(())
}

/// Accumulated statistics for one span name.
#[derive(Default)]
struct SpanStat {
    count: u64,
    total_us: u64,
    self_us: u64,
}

fn summarize(events: &[RawEvent], top: usize) {
    // ---- span walk: per-tid stacks give total and self time --------------
    let mut stats: BTreeMap<&str, SpanStat> = BTreeMap::new();
    // Per tid: stack of (name, enter t, accumulated child time).
    let mut stacks: BTreeMap<u64, Vec<(&str, u64, u64)>> = BTreeMap::new();
    // Last value per counter name; last bucket set per histogram name.
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<&str, &[(u64, u64)]> = BTreeMap::new();
    // (block -> expert -> rows), per source, forward pass only.
    let mut rows_runtime: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut rows_model: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut max_step = 0u64;

    for ev in events {
        max_step = max_step.max(ev.step.unwrap_or(0));
        match ev.ev.as_str() {
            "b" => stacks.entry(ev.tid).or_default().push((&ev.name, ev.t, 0)),
            "e" => {
                let stack = stacks.entry(ev.tid).or_default();
                // Tolerate truncated traces: skip exits with no open span.
                if let Some((name, start, child)) = stack.pop() {
                    let dur = ev.t.saturating_sub(start);
                    let s = stats.entry(name).or_default();
                    s.count += 1;
                    s.total_us += dur;
                    s.self_us += dur.saturating_sub(child);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += dur;
                    }
                }
            }
            "c" => {
                counters.insert(&ev.name, ev.value.unwrap_or(0));
            }
            "h" => {
                histograms.insert(&ev.name, &ev.buckets);
            }
            "x" => {
                if ev.name != "fwd" {
                    continue;
                }
                let by_block = match ev.src.as_deref() {
                    Some("model") => &mut rows_model,
                    // Per-replica worker events feed the replication
                    // section, not the per-expert totals.
                    Some(s) if s.starts_with("worker") => continue,
                    _ => &mut rows_runtime,
                };
                let per_expert = by_block.entry(ev.block.unwrap_or(0)).or_default();
                for &(expert, rows) in &ev.rows {
                    *per_expert.entry(expert).or_insert(0) += rows;
                }
            }
            _ => {}
        }
    }

    println!(
        "== trace summary: {} events, {max_step} steps ==",
        events.len()
    );

    if !stats.is_empty() {
        println!("\n-- span totals --");
        println!(
            "{:<32} {:>8} {:>12} {:>10}",
            "span", "count", "total (ms)", "mean (µs)"
        );
        for (name, s) in &stats {
            println!(
                "{:<32} {:>8} {:>12.3} {:>10.1}",
                name,
                s.count,
                s.total_us as f64 / 1e3,
                s.total_us as f64 / s.count as f64
            );
        }

        println!("\n-- top {top} self-time --");
        println!("{:<32} {:>12} {:>7}", "span", "self (ms)", "share");
        let total_self: u64 = stats.values().map(|s| s.self_us).sum();
        let mut by_self: Vec<(&str, &SpanStat)> = stats.iter().map(|(n, s)| (*n, s)).collect();
        by_self.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us));
        for (name, s) in by_self.iter().take(top) {
            println!(
                "{:<32} {:>12.3} {:>6.1}%",
                name,
                s.self_us as f64 / 1e3,
                100.0 * s.self_us as f64 / total_self.max(1) as f64
            );
        }
    }

    // Prefer the runtime's view of expert traffic (it is what the broker
    // actually moved); fall back to the model-side dispatch counts.
    let (rows, src) = if !rows_runtime.is_empty() {
        (&rows_runtime, "runtime")
    } else {
        (&rows_model, "model")
    };
    if !rows.is_empty() {
        println!("\n-- per-expert tokens per block (src: {src}, forward) --");
        for (block, per_expert) in rows {
            let total: u64 = per_expert.values().sum();
            let parts: Vec<String> = per_expert
                .iter()
                .map(|(e, r)| format!("e{e}:{r} ({:.1}%)", 100.0 * *r as f64 / total.max(1) as f64))
                .collect();
            println!("  block {block:>2} | {}", parts.join("  "));
        }
    }

    // Replication: when the broker routed over ≥ 2 replicas it traced a
    // per-worker row split — report replica counts, token shares, and the
    // resulting load balance.
    let replicas = replica_rows(events);
    let fwd: Vec<(&(String, u64, u64), &BTreeMap<u64, u64>)> = replicas
        .per_worker
        .iter()
        .filter(|(k, _)| k.0 == "fwd")
        .collect();
    if !fwd.is_empty() {
        println!("\n-- replication (per-replica token shares, forward) --");
        let mut worker_totals: BTreeMap<u64, u64> = BTreeMap::new();
        for (key, workers) in &fwd {
            let (_, block, expert) = key;
            let total: u64 = workers.values().sum();
            for (&w, &r) in workers.iter() {
                *worker_totals.entry(w).or_insert(0) += r;
            }
            if workers.len() < 2 {
                continue; // routed but never actually split
            }
            let shares: Vec<String> = workers
                .iter()
                .map(|(w, r)| format!("w{w}:{:.1}%", 100.0 * *r as f64 / total.max(1) as f64))
                .collect();
            println!(
                "  block {block:>2} expert {expert:>2} | replicas {} | {}  (rows {total})",
                workers.len(),
                shares.join("  ")
            );
        }
        let split_pairs = fwd.iter().filter(|(_, w)| w.len() >= 2).count();
        let max = worker_totals.values().copied().max().unwrap_or(0) as f64;
        let mean = worker_totals.values().sum::<u64>() as f64 / worker_totals.len().max(1) as f64;
        println!(
            "  {} expert(s) split across replicas; load imbalance (max/mean worker rows): {:.2}",
            split_pairs,
            if mean > 0.0 { max / mean } else { 1.0 }
        );
    }

    // Wire-format economics: encoded bytes by frame kind, split into
    // framing headers vs data payloads (the split the packed layout and
    // int8 quantization exist to shrink).
    let wire_rows: Vec<(&str, u64, u64)> = ["dispatch", "result", "expert_state"]
        .iter()
        .map(|kind| {
            let get = |field: &str| {
                counters
                    .get(format!("wire.{kind}.{field}").as_str())
                    .copied()
                    .unwrap_or(0)
            };
            (*kind, get("header_bytes"), get("payload_bytes"))
        })
        .filter(|&(_, h, p)| h + p > 0)
        .collect();
    if !wire_rows.is_empty() {
        println!("\n-- wire bytes by frame kind --");
        println!(
            "{:<14} {:>14} {:>14} {:>9}",
            "kind", "header", "payload", "overhead"
        );
        for &(kind, header, payload) in &wire_rows {
            println!(
                "{:<14} {:>14} {:>14} {:>8.2}%",
                kind,
                header,
                payload,
                100.0 * header as f64 / (header + payload).max(1) as f64
            );
        }
    }

    // Background migration: the chunked shadow-install lane's counters
    // and the step-boundary pump span, when the run moved experts with
    // `VELA_MIGRATION=overlap`.
    let mig = |field: &str| {
        counters
            .get(format!("runtime.migration.{field}").as_str())
            .copied()
            .unwrap_or(0)
    };
    let (chunks, mig_bytes, commits) = (mig("chunks"), mig("bytes"), mig("commits"));
    if chunks + mig_bytes + commits > 0 {
        println!("\n-- background migration --");
        println!(
            "  {commits} cutover(s); {chunks} chunk frame(s), {mig_bytes} payload bytes relayed"
        );
        println!(
            "  boundary pump {:.3} ms, shutdown flush {:.3} ms",
            mig("pump_us") as f64 / 1e3,
            mig("flush_us") as f64 / 1e3
        );
        if let Some(s) = stats.get("runtime.migration.pump") {
            println!(
                "  pump span: {} boundary drain(s), mean {:.1} µs",
                s.count,
                s.total_us as f64 / s.count.max(1) as f64
            );
        }
    }

    if !counters.is_empty() {
        println!("\n-- counters (final) --");
        for (name, value) in &counters {
            println!("{name:<40} {value:>14}");
        }
    }

    if !histograms.is_empty() {
        println!("\n-- histograms (power-of-two buckets) --");
        for (name, buckets) in &histograms {
            let parts: Vec<String> = buckets
                .iter()
                .map(|(lo, count)| format!("≥{lo}:{count}"))
                .collect();
            println!("{name:<40} {}", parts.join(" "));
        }
    }
}

//! Summarises a vela JSONL trace (`VELA_TRACE=jsonl`).
//!
//! Reads the trace written by `VELA_TRACE_OUT` and prints:
//!
//! * per-span totals (count, total time, mean) and a top-N *self-time*
//!   table (time in a span minus time in its children) — the per-step
//!   attribution the paper's breakdowns are built from;
//! * per-expert token counts per MoE block, re-deriving the Fig. 3
//!   locality heat rows from the `"x"` (expert-rows) events;
//! * final counter values and histogram snapshots.
//!
//! With `--check` it instead validates the trace — schema-valid lines,
//! per-thread monotone timestamps, balanced enter/exit, and (whenever the
//! trace contains broker/virtual exchange spans) the presence of the
//! `runtime.pipeline.*` per-chunk spans, so the ring instrumentation
//! cannot silently disappear — and exits non-zero on any violation (used
//! by `scripts/verify.sh`).
//!
//! Usage: `trace_summary [--check] [--top N] FILE`

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

use vela_obs::reader::{parse_line, validate, RawEvent};

fn usage() -> ExitCode {
    eprintln!("usage: trace_summary [--check] [--top N] FILE");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut check = false;
    let mut top = 10usize;
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--top" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => return usage(),
            },
            other if file.is_none() && !other.starts_with('-') => file = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = file else { return usage() };
    let f = match File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_summary: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut events: Vec<RawEvent> = Vec::new();
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("trace_summary: read error at line {}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("trace_summary: {path}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    if check {
        match validate(&events) {
            Ok(stats) => {
                if let Err(e) = check_pipeline_instrumentation(&events) {
                    eprintln!("trace INVALID: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "trace OK: {} events, {} spans, {} threads, {:.3} ms span of wall time",
                    stats.events,
                    stats.spans,
                    stats.threads,
                    stats.max_t as f64 / 1e3
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("trace INVALID: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        summarize(&events, top);
        ExitCode::SUCCESS
    }
}

/// Any trace that records an exchange (a broker or virtual fwd/bwd span)
/// must also record the ring pipeline's per-chunk serialize spans and the
/// exchange-time counter — otherwise the overlap instrumentation has
/// silently regressed.
fn check_pipeline_instrumentation(events: &[RawEvent]) -> Result<(), String> {
    let span_present = |name: &str| events.iter().any(|ev| ev.ev == "b" && ev.name == name);
    let exchanges = [
        "runtime.broker.fwd",
        "runtime.broker.bwd",
        "runtime.virtual.fwd",
        "runtime.virtual.bwd",
    ];
    if !exchanges.iter().any(|s| span_present(s)) {
        return Ok(()); // no exchanges traced, nothing to require
    }
    if !span_present("runtime.pipeline.serialize") {
        return Err(
            "trace has exchange spans but no runtime.pipeline.serialize spans \
             (ring pipeline instrumentation missing)"
                .into(),
        );
    }
    let counter_present = |name: &str| events.iter().any(|ev| ev.ev == "c" && ev.name == name);
    if !counter_present("runtime.pipeline.exchange_us") {
        return Err(
            "trace has exchange spans but no runtime.pipeline.exchange_us counter \
             (pipeline timing counters missing)"
                .into(),
        );
    }
    Ok(())
}

/// Accumulated statistics for one span name.
#[derive(Default)]
struct SpanStat {
    count: u64,
    total_us: u64,
    self_us: u64,
}

fn summarize(events: &[RawEvent], top: usize) {
    // ---- span walk: per-tid stacks give total and self time --------------
    let mut stats: BTreeMap<&str, SpanStat> = BTreeMap::new();
    // Per tid: stack of (name, enter t, accumulated child time).
    let mut stacks: BTreeMap<u64, Vec<(&str, u64, u64)>> = BTreeMap::new();
    // Last value per counter name; last bucket set per histogram name.
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<&str, &[(u64, u64)]> = BTreeMap::new();
    // (block -> expert -> rows), per source, forward pass only.
    let mut rows_runtime: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut rows_model: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut max_step = 0u64;

    for ev in events {
        max_step = max_step.max(ev.step.unwrap_or(0));
        match ev.ev.as_str() {
            "b" => stacks.entry(ev.tid).or_default().push((&ev.name, ev.t, 0)),
            "e" => {
                let stack = stacks.entry(ev.tid).or_default();
                // Tolerate truncated traces: skip exits with no open span.
                if let Some((name, start, child)) = stack.pop() {
                    let dur = ev.t.saturating_sub(start);
                    let s = stats.entry(name).or_default();
                    s.count += 1;
                    s.total_us += dur;
                    s.self_us += dur.saturating_sub(child);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += dur;
                    }
                }
            }
            "c" => {
                counters.insert(&ev.name, ev.value.unwrap_or(0));
            }
            "h" => {
                histograms.insert(&ev.name, &ev.buckets);
            }
            "x" => {
                if ev.name != "fwd" {
                    continue;
                }
                let by_block = match ev.src.as_deref() {
                    Some("model") => &mut rows_model,
                    _ => &mut rows_runtime,
                };
                let per_expert = by_block.entry(ev.block.unwrap_or(0)).or_default();
                for &(expert, rows) in &ev.rows {
                    *per_expert.entry(expert).or_insert(0) += rows;
                }
            }
            _ => {}
        }
    }

    println!(
        "== trace summary: {} events, {max_step} steps ==",
        events.len()
    );

    if !stats.is_empty() {
        println!("\n-- span totals --");
        println!(
            "{:<32} {:>8} {:>12} {:>10}",
            "span", "count", "total (ms)", "mean (µs)"
        );
        for (name, s) in &stats {
            println!(
                "{:<32} {:>8} {:>12.3} {:>10.1}",
                name,
                s.count,
                s.total_us as f64 / 1e3,
                s.total_us as f64 / s.count as f64
            );
        }

        println!("\n-- top {top} self-time --");
        println!("{:<32} {:>12} {:>7}", "span", "self (ms)", "share");
        let total_self: u64 = stats.values().map(|s| s.self_us).sum();
        let mut by_self: Vec<(&str, &SpanStat)> = stats.iter().map(|(n, s)| (*n, s)).collect();
        by_self.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us));
        for (name, s) in by_self.iter().take(top) {
            println!(
                "{:<32} {:>12.3} {:>6.1}%",
                name,
                s.self_us as f64 / 1e3,
                100.0 * s.self_us as f64 / total_self.max(1) as f64
            );
        }
    }

    // Prefer the runtime's view of expert traffic (it is what the broker
    // actually moved); fall back to the model-side dispatch counts.
    let (rows, src) = if !rows_runtime.is_empty() {
        (&rows_runtime, "runtime")
    } else {
        (&rows_model, "model")
    };
    if !rows.is_empty() {
        println!("\n-- per-expert tokens per block (src: {src}, forward) --");
        for (block, per_expert) in rows {
            let total: u64 = per_expert.values().sum();
            let parts: Vec<String> = per_expert
                .iter()
                .map(|(e, r)| format!("e{e}:{r} ({:.1}%)", 100.0 * *r as f64 / total.max(1) as f64))
                .collect();
            println!("  block {block:>2} | {}", parts.join("  "));
        }
    }

    // Wire-format economics: encoded bytes by frame kind, split into
    // framing headers vs data payloads (the split the packed layout and
    // int8 quantization exist to shrink).
    let wire_rows: Vec<(&str, u64, u64)> = ["dispatch", "result", "expert_state"]
        .iter()
        .map(|kind| {
            let get = |field: &str| {
                counters
                    .get(format!("wire.{kind}.{field}").as_str())
                    .copied()
                    .unwrap_or(0)
            };
            (*kind, get("header_bytes"), get("payload_bytes"))
        })
        .filter(|&(_, h, p)| h + p > 0)
        .collect();
    if !wire_rows.is_empty() {
        println!("\n-- wire bytes by frame kind --");
        println!(
            "{:<14} {:>14} {:>14} {:>9}",
            "kind", "header", "payload", "overhead"
        );
        for &(kind, header, payload) in &wire_rows {
            println!(
                "{:<14} {:>14} {:>14} {:>8.2}%",
                kind,
                header,
                payload,
                100.0 * header as f64 / (header + payload).max(1) as f64
            );
        }
    }

    if !counters.is_empty() {
        println!("\n-- counters (final) --");
        for (name, value) in &counters {
            println!("{name:<40} {value:>14}");
        }
    }

    if !histograms.is_empty() {
        println!("\n-- histograms (power-of-two buckets) --");
        for (name, buckets) in &histograms {
            let parts: Vec<String> = buckets
                .iter()
                .map(|(lo, count)| format!("≥{lo}:{count}"))
                .collect();
            println!("{name:<40} {}", parts.join(" "));
        }
    }
}

//! Fig. 6 — average time to complete one fine-tuning step (§V-B).
//!
//! Same grid as Fig. 5; reports mean ± std of the simulated step time per
//! strategy, with the communication/compute/sync breakdown that explains
//! *why* VELA beats EP by more than the traffic reduction alone (EP pays a
//! status-synchronization round before every all-to-all).
//!
//! Run: `cargo run --release -p vela-bench --bin fig6 [-- --steps N]`

use vela::prelude::*;
use vela_bench::{eval_strategies, measured_profile, pretrain_micro, EvalDataset, EvalModel};

fn main() {
    let steps: usize = std::env::args()
        .skip_while(|a| a != "--steps")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let replication = ReplicationConfig::from_env();
    println!("== Fig. 6: average time per fine-tuning step ({steps} steps) ==");
    println!("replication: {}", replication.label());

    for model in EvalModel::ALL {
        let spec = model.spec();
        let scale = ScaleConfig::paper_default(spec);
        vela_obs::info!(
            "pre-training {} micro proxy and measuring locality",
            model.name()
        );
        let (mut m, mut e) = pretrain_micro(model);
        for dataset in EvalDataset::ALL {
            let profile = measured_profile(&mut m, &mut e, dataset, &spec, model.seed());
            println!("\n-- {} with {} --", model.name(), dataset.name());
            println!(
                "{:>10} | {:>11} | {:>9} | {:>8} | {:>8} | {:>8} | {:>8} | {:>9} | {:>9} | {:>6} | {:>8}",
                "strategy",
                "transport",
                "step (s)",
                "± std",
                "p50",
                "p95",
                "p99",
                "comm (s)",
                "sync (s)",
                "repl",
                "vs EP"
            );
            let mut ep_time = None;
            for strategy in eval_strategies() {
                let probe = vela_bench::AttributionProbe::start();
                let (metrics, repl) = vela_bench::run_strategy_with(
                    strategy,
                    replication,
                    &profile,
                    &spec,
                    &scale,
                    steps,
                );
                let mut summary = vela_bench::summarize_strategy(strategy, &metrics);
                if let Some(attribution) = probe.finish(metrics.len()) {
                    summary = summary.with_attribution(attribution);
                }
                if let Some(r) = repl {
                    summary = summary.with_replication(r);
                }
                if strategy.label() == "EP" {
                    ep_time = Some(summary.avg_step_time);
                }
                let speedup =
                    RunSummary::reduction_vs(summary.avg_step_time, ep_time.expect("EP first"))
                        * 100.0;
                let (p50, p95, p99) = summary.step_time_percentiles();
                // The replication column: `-` for EP (no placement to
                // replicate), `off` at degree 1, else the mean degree.
                let repl_cell = match summary.replication {
                    None => "-".to_string(),
                    Some(r) if r.max_degree <= 1 => "off".to_string(),
                    Some(r) => format!("x{:.2}", r.avg_degree),
                };
                println!(
                    "{:>10} | {:>11} | {:>9.4} | {:>8.4} | {:>8.4} | {:>8.4} | {:>8.4} | {:>9.4} | {:>9.4} | {repl_cell:>6} | {speedup:+7.1}%",
                    strategy.label(),
                    summary.transport,
                    summary.avg_step_time,
                    summary.std_step_time,
                    p50,
                    p95,
                    p99,
                    summary.avg_comm_time,
                    summary.avg_sync_time,
                );
                if let Some(r) = summary.replication.filter(|r| r.max_degree > 1) {
                    println!(
                        "{:>10} | replication: max degree {}, avg {:.2}, {} sync/step, \
                         straggler x{:.2}",
                        "",
                        r.max_degree,
                        r.avg_degree,
                        vela_bench::mb(r.sync_bytes_per_step),
                        r.straggler_index,
                    );
                }
                if let Some(a) = summary.attribution {
                    println!(
                        "{:>10} | measured µs/step: serialize {:.1} | inflight {:.1} \
                         (stall {:.1}, compute {:.1}, wire {:.1}) | combine {:.1} | \
                         exchange wall {:.1}",
                        "",
                        a.serialize_us,
                        a.inflight_us,
                        a.stall_us,
                        a.compute_us,
                        a.wire_us(),
                        a.combine_us,
                        a.exchange_us,
                    );
                }
            }
            println!("(paper: VELA accelerates steps by 20.6%..28.2% vs EP)");
        }
    }
}

//! Theorem 1 — empirical verification of the softmax-stability bound
//! (§III-B).
//!
//! Fine-tunes the TinyMistral analogue with SGD (the optimizer assumed by
//! the theorem) and, at every step, evaluates the first block's gate on a
//! fixed probe batch before and after the update. Checks the proof's
//! measurable inequality `ΔP(e) ≤ E·P(e)·(1−P(e))·max_k|Δy_k|` for every
//! expert of every probe token, and reports how tight it is.
//!
//! Run: `cargo run --release -p vela-bench --bin theorem1`

use vela::locality::theorem::{check_bound, drift_bound};
use vela::nn::param::Module;
use vela::prelude::*;

fn main() {
    let tok = CharTokenizer::new();
    let cfg = ModelConfig::tiny_mistral(tok.vocab_size());
    println!("== Theorem 1: stability of expert selection under SGD fine-tuning ==");

    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 200,
            batch_size: 8,
            corpus_chars: 100_000,
            seed: 11,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    vela::model::finetune::prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(3),
    );

    let dataset = TokenDataset::from_text(&tok, &Corpus::TinyShakespeare.generate(60_000, 9));
    let probe = dataset.sample_batch(2, cfg.seq_len, &mut DetRng::new(4));

    // Gate probabilities of block 0 on the probe batch.
    let gate_probs = |model: &mut MoeModel, experts: &mut LocalExpertStore| {
        model.forward(&probe.inputs, probe.batch_size, probe.seq_len, experts);
        let info = &model.routing_snapshot()[0];
        // Reconstruct full per-token distributions from selected data is
        // lossy; instead re-derive from the selected probs' structure: we
        // use the tracked selected probabilities for the bound's P and the
        // drift from consecutive snapshots.
        info.clone()
    };

    let lr = 1e-3f32;
    let mut opt = Sgd::new(lr);
    let mut opt_e = Sgd::new(lr);
    let mut rng = DetRng::new(5);
    let steps = 100;

    // (probs, pseudo-logits) of the previous probe.
    type ProbeRows = (Vec<Vec<f64>>, Vec<Vec<f64>>);
    let mut prev: Option<ProbeRows> = None;
    let mut max_observed = 0.0f64;
    let mut max_bound_v = 0.0f64;
    let mut violations = 0usize;
    let mut checked = 0usize;

    for step in 0..steps {
        // Probe before update at this step is the same state as after the
        // previous update, so one probe per step suffices.
        let info = gate_probs(&mut model, &mut experts);
        // Per-token selected-score rows padded into full distributions: we
        // track the top-k scores and spread the remaining mass.
        let tokens = info.tokens;
        let mut probs_rows: Vec<Vec<f64>> = Vec::with_capacity(tokens);
        for t in 0..tokens {
            let mut row = vec![0.0f64; cfg.experts];
            let rest: f64 = 1.0
                - info.selected_probs[t * info.k..(t + 1) * info.k]
                    .iter()
                    .map(|&p| p as f64)
                    .sum::<f64>();
            for j in 0..info.k {
                row[info.selected[t * info.k + j]] = info.selected_probs[t * info.k + j] as f64;
            }
            // Spread the unselected mass uniformly (upper-bounds each
            // unselected P, keeping the bound conservative).
            let spread = rest / (cfg.experts - info.k) as f64;
            for v in row.iter_mut() {
                if *v == 0.0 {
                    *v = spread;
                }
            }
            probs_rows.push(row);
        }
        // Pseudo-logits: log-probabilities (softmax is shift-invariant, so
        // log P is a valid logit vector reproducing P).
        let logit_rows: Vec<Vec<f64>> = probs_rows
            .iter()
            .map(|row| row.iter().map(|&p| p.max(1e-12).ln()).collect())
            .collect();

        if let Some((prev_probs, prev_logits)) = prev.take() {
            let check = check_bound(&prev_probs, &probs_rows, &prev_logits, &logit_rows, 0.10);
            max_observed = max_observed.max(check.max_observed);
            max_bound_v = max_bound_v.max(check.max_bound);
            violations += check.violations;
            checked += check.checked;
        }
        prev = Some((probs_rows, logit_rows));

        let batch = dataset.sample_batch(8, cfg.seq_len, &mut rng);
        experts.zero_grad();
        model.train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
            &mut experts,
        );
        opt.step(&mut model);
        opt_e.step(&mut experts);
        if step % 20 == 0 {
            println!(
                "  step {step:>3}: max observed ΔP so far {:.5}, max bound {:.5}",
                max_observed, max_bound_v
            );
        }
    }

    println!("\nchecked {checked} (token, expert) drift observations over {steps} SGD steps");
    println!("max observed ΔP: {max_observed:.6}");
    println!("max first-order bound E·P(1−P)·max|Δy|: {max_bound_v:.6}");
    println!(
        "violations beyond 10% second-order slack: {violations} ({:.3}%)",
        100.0 * violations as f64 / checked.max(1) as f64
    );

    // The analytic form: for a confidently-routed token (P ≈ 0.9) the bound
    // is tiny compared to an uncertain one (P = 0.5).
    println!(
        "\nanalytic bound μEL²·P(1−P) at μ={lr}, E={}, L=1:",
        cfg.experts
    );
    for p in [0.05, 0.25, 0.5, 0.75, 0.95] {
        println!(
            "  P = {p:.2}: bound = {:.6}",
            drift_bound(p, cfg.experts, lr as f64, 1.0)
        );
    }
    println!("(paper: high-confidence selections are stable; the bound vanishes as P→0 or P→1)");
}

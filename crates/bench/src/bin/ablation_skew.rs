//! Ablation: traffic reduction as a function of access-distribution
//! concentration.
//!
//! Sweeps the Zipf skew of a synthetic locality profile from uniform to
//! heavily concentrated and measures VELA's external-traffic reduction vs
//! sequential placement on live virtual runs — quantifying the paper's
//! qualitative WikiText-vs-Alpaca observation.
//!
//! Run: `cargo run --release -p vela-bench --bin ablation_skew`

use vela::prelude::*;
use vela_bench::{run_strategy, scale_problem};

fn main() {
    println!("== Ablation: benefit vs routing concentration (Zipf sweep) ==");
    let spec = MoeSpec::mixtral_8x7b();
    let scale = ScaleConfig {
        drift: 0.0,
        ..ScaleConfig::paper_default(spec)
    };
    let steps = 20;
    println!(
        "{:>6} | {:>13} | {:>12} | {:>12} | {:>9}",
        "zipf", "concentration", "seq (MB)", "vela (MB)", "reduction"
    );
    for zipf in [0.0, 0.4, 0.8, 1.2, 1.6, 2.0] {
        let profile = LocalityProfile::synthetic("s", spec.blocks, spec.experts, zipf, 21);
        let _problem = scale_problem(&profile, &spec, &Topology::paper_testbed(), &scale);
        let seq = RunSummary::from_steps(&run_strategy(
            Strategy::Sequential,
            &profile,
            &spec,
            &scale,
            steps,
        ));
        let vela = RunSummary::from_steps(&run_strategy(
            Strategy::Vela,
            &profile,
            &spec,
            &scale,
            steps,
        ));
        println!(
            "{zipf:>6.1} | {:>13.3} | {:>12} | {:>12} | {:>8.1}%",
            profile.mean_concentration(),
            vela_bench::mb(seq.avg_external_per_node),
            vela_bench::mb(vela.avg_external_per_node),
            RunSummary::reduction_vs(vela.avg_external_per_node, seq.avg_external_per_node) * 100.0
        );
    }
    println!("\n(uniform routing -> no placement can win; concentration -> growing reduction)");
}

//! Ablation: heterogeneous inter-node networks.
//!
//! The LP formulation uses per-worker bandwidths `B_n` (Eq. (6)), so it
//! handles networks where remote nodes are *differently* far — e.g. one
//! rack-local peer at 6 GB/s and one cross-rack peer at 0.4 GB/s. This
//! ablation verifies VELA ranks the remote nodes by link speed: hot
//! experts land near the master, warm ones on the fast peer, cold ones on
//! the slow peer — something bandwidth-oblivious baselines cannot do.
//!
//! Run: `cargo run --release -p vela-bench --bin ablation_heterogeneous`

use vela::prelude::*;
use vela::runtime::virtual_engine::capacity_from_memory;

fn main() {
    println!("== Ablation: heterogeneous inter-node links ==");
    let spec = MoeSpec::mixtral_8x7b();
    let profile = LocalityProfile::synthetic("h", spec.blocks, spec.experts, 1.2, 19);

    // node0 hosts the master; node1 is rack-local (fast), node2 remote (slow).
    let topology = Topology::builder(3, 2)
        .node_link(0, 1, Bandwidth::from_gbytes_per_sec(6.0))
        .node_link(0, 2, Bandwidth::from_gbytes_per_sec(0.4))
        .build();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let caps = capacity_from_memory(&topology, &workers, &spec, 0.5);
    let problem = PlacementProblem::new(
        topology,
        DeviceId(0),
        workers,
        profile.to_matrix(),
        8192.0,
        spec.token_bytes(),
        caps,
    );

    println!(
        "links: master node0; node1 at 6.0 GB/s; node2 at 0.4 GB/s\n\n{:>12} | {:>12} | {:>24}",
        "strategy", "E[T] (s)", "experts n0 / n1 / n2"
    );
    for strategy in [
        Strategy::Sequential,
        Strategy::Random { seed: 4 },
        Strategy::Greedy,
        Strategy::Vela,
    ] {
        let placement = strategy.place(&problem);
        let load = placement.load();
        println!(
            "{:>12} | {:>12.4} | {:>7} / {:>4} / {:>4}",
            strategy.label(),
            problem.expected_comm_time(&placement),
            load[0] + load[1],
            load[2] + load[3],
            load[4] + load[5],
        );
    }

    // Per-node expected token mass under VELA: the slow node should carry
    // the least.
    let placement = Strategy::Vela.place(&problem);
    let mut node_mass = [0.0f64; 3];
    for l in 0..spec.blocks {
        for e in 0..spec.experts {
            node_mass[placement.worker_of(l, e) / 2] += profile.prob(l, e);
        }
    }
    let total: f64 = node_mass.iter().sum();
    println!(
        "\nVELA's expected token mass per node: n0 {:.1}%  n1 {:.1}%  n2 {:.1}%",
        node_mass[0] / total * 100.0,
        node_mass[1] / total * 100.0,
        node_mass[2] / total * 100.0
    );
    println!("(hot near master, warm on the fast peer, cold on the slow peer)");
}

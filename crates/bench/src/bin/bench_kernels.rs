//! Serial-vs-parallel kernel benchmark, emitted as `BENCH_kernels.json`.
//!
//! Times the three matmul variants at 256×256×256 and a MoeBlock
//! forward/backward pass under a 1-thread pool and under the default
//! pool (`VELA_THREADS` / host parallelism), then writes the timings
//! and speedups as a small hand-rolled JSON file in the current
//! directory. Run with `cargo run --release -p vela-bench --bin
//! bench_kernels`.

use std::fmt::Write as _;
use vela::model::{LocalExpertStore, ModelConfig, MoeBlock};
use vela::prelude::*;
use vela::tensor::parallel::{self, ThreadPool};
use vela_bench::microbench::secs_per_iter;

struct Row {
    name: &'static str,
    serial_secs: f64,
    parallel_secs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs
    }
}

/// Time `f` once under the 1-thread pool and once under the default
/// pool. The serial pass runs first so cache warm-up penalises the
/// serial number, not the parallel one (conservative for speedups).
fn row<R>(
    name: &'static str,
    serial: &ThreadPool,
    pool: &ThreadPool,
    mut f: impl FnMut() -> R,
) -> Row {
    let serial_secs = parallel::with_pool(serial, || secs_per_iter(5, 0.05, &mut f));
    let parallel_secs = parallel::with_pool(pool, || secs_per_iter(5, 0.05, &mut f));
    Row {
        name,
        serial_secs,
        parallel_secs,
    }
}

fn main() {
    let serial = ThreadPool::new(1);
    let pool = ThreadPool::new(parallel::default_threads());
    let threads = pool.threads();
    let mut rows = Vec::new();

    let n = 256;
    let mut rng = DetRng::new(1);
    let a = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
    let b = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
    rows.push(row("matmul_nn_256", &serial, &pool, || a.matmul(&b)));
    rows.push(row("matmul_tn_256", &serial, &pool, || a.matmul_tn(&b)));
    rows.push(row("matmul_nt_256", &serial, &pool, || a.matmul_nt(&b)));

    let cfg = ModelConfig {
        vocab: 64,
        dim: 64,
        heads: 4,
        kv_heads: 4,
        ffn_hidden: 128,
        blocks: 1,
        experts: 8,
        top_k: 2,
        seq_len: 512,
        aux_loss_weight: 0.0,
    };
    let mut rng = DetRng::new(2);
    let mut store = LocalExpertStore::new(&cfg, &mut rng);
    let mut block = MoeBlock::new(0, cfg.dim, cfg.experts, cfg.top_k, 0.0, &mut rng);
    let x = Tensor::uniform((512, cfg.dim), -1.0, 1.0, &mut rng);
    rows.push(row("moe_forward_512tok", &serial, &pool, || {
        block.forward(&x, &mut store)
    }));
    let g = Tensor::ones((512, cfg.dim));
    rows.push(row("moe_fwd_bwd_512tok", &serial, &pool, || {
        block.forward(&x, &mut store);
        block.backward(&g, &mut store)
    }));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"serial_secs\": {:.9}, \"parallel_secs\": {:.9}, \"speedup\": {:.3}}}",
            r.name,
            r.serial_secs,
            r.parallel_secs,
            r.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    println!("threads: {threads}");
    for r in &rows {
        println!(
            "{:<24} serial {:>12.3e}s  parallel {:>12.3e}s  speedup {:>6.2}x",
            r.name,
            r.serial_secs,
            r.parallel_secs,
            r.speedup()
        );
    }
    std::fs::write("BENCH_kernels.json", json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}

//! Serial-vs-parallel kernel benchmark, emitted as `BENCH_kernels.json`.
//!
//! Times the three matmul variants at 256×256×256 and on the rectangular
//! training-step shapes (LoRA `r×dim` projections, expert-FFN
//! `dim×hidden` projections and their backward transposes), plus a
//! MoeBlock forward/backward pass, under a 1-thread pool and under the
//! default pool (`VELA_THREADS` / host parallelism). Each kernel also
//! reports *heap allocations per iteration*, counted by the
//! [`vela_bench::alloc::CountingAllocator`] registered as the global
//! allocator — the zero-allocation hot-path metric.
//!
//! Usage:
//!   bench_kernels                 full run, writes BENCH_kernels.json
//!   bench_kernels --quick         faster sampling, does not write JSON
//!   bench_kernels --check FILE    compare serial times against a committed
//!                                 JSON; exits non-zero if any kernel
//!                                 regressed by more than 2x
//!
//! Run with `cargo run --release -p vela-bench --bin bench_kernels`.

use std::fmt::Write as _;
use vela::model::{LocalExpertStore, ModelConfig, MoeBlock};
use vela::prelude::*;
use vela::tensor::parallel::{self, ThreadPool};
use vela_bench::alloc::{count_allocations, CountingAllocator};
use vela_bench::microbench::secs_per_iter;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Row {
    name: &'static str,
    serial_secs: f64,
    parallel_secs: f64,
    /// Heap allocations in one steady-state iteration (serial pool).
    allocs_per_iter: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs
    }
}

/// Sampling parameters: (samples, target batch seconds).
#[derive(Clone, Copy)]
struct Sampling {
    samples: usize,
    target_batch_secs: f64,
}

/// Time `f` once under the 1-thread pool and once under the default
/// pool, and count one iteration's heap allocations after warm-up. The
/// serial pass runs first so cache warm-up penalises the serial number,
/// not the parallel one (conservative for speedups).
fn row<R>(
    name: &'static str,
    serial: &ThreadPool,
    pool: &ThreadPool,
    sampling: Sampling,
    mut f: impl FnMut() -> R,
) -> Row {
    let allocs_per_iter = parallel::with_pool(serial, || {
        // Warm up buffers/caches so the count reflects the steady state,
        // then take the minimum over several iterations: an occasional
        // workspace-pool eviction re-allocates one buffer, which would
        // otherwise make the zero-allocation metric flaky.
        for _ in 0..6 {
            f();
        }
        (0..5).map(|_| count_allocations(&mut f).0).min().unwrap()
    });
    let serial_secs = parallel::with_pool(serial, || {
        secs_per_iter(sampling.samples, sampling.target_batch_secs, &mut f)
    });
    let parallel_secs = parallel::with_pool(pool, || {
        secs_per_iter(sampling.samples, sampling.target_batch_secs, &mut f)
    });
    Row {
        name,
        serial_secs,
        parallel_secs,
        allocs_per_iter,
    }
}

fn run_all(sampling: Sampling) -> (usize, Vec<Row>) {
    let serial = ThreadPool::new(1);
    let pool = ThreadPool::new(parallel::default_threads());
    let threads = pool.threads();
    let mut rows = Vec::new();

    // Square kernels: the historical reference points.
    let n = 256;
    let mut rng = DetRng::new(1);
    let a = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
    let b = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
    rows.push(row("matmul_nn_256", &serial, &pool, sampling, || {
        a.matmul(&b)
    }));
    rows.push(row("matmul_tn_256", &serial, &pool, sampling, || {
        a.matmul_tn(&b)
    }));
    rows.push(row("matmul_nt_256", &serial, &pool, sampling, || {
        a.matmul_nt(&b)
    }));

    // Rectangular training-step shapes: LoRA adapters (r=8, dim=64) and
    // the expert FFN projections (dim=64, hidden=128) over 512 tokens.
    let mut rng = DetRng::new(7);
    let x = Tensor::uniform((512, 64), -1.0, 1.0, &mut rng); // [tokens, dim]
    let wa = Tensor::uniform((64, 8), -1.0, 1.0, &mut rng); // LoRA A
    let xa = Tensor::uniform((512, 8), -1.0, 1.0, &mut rng); // x·A
    let wb = Tensor::uniform((8, 64), -1.0, 1.0, &mut rng); // LoRA B
    let wg = Tensor::uniform((64, 128), -1.0, 1.0, &mut rng); // gate/up weight
    let h = Tensor::uniform((512, 128), -1.0, 1.0, &mut rng); // hidden grad
    rows.push(row("lora_down_512x64x8", &serial, &pool, sampling, || {
        x.matmul(&wa)
    }));
    rows.push(row("lora_up_512x8x64", &serial, &pool, sampling, || {
        xa.matmul(&wb)
    }));
    rows.push(row("ffn_fwd_512x64x128", &serial, &pool, sampling, || {
        x.matmul(&wg)
    }));
    rows.push(row(
        "ffn_bwd_dw_512x64x128",
        &serial,
        &pool,
        sampling,
        || x.matmul_tn(&h),
    ));
    rows.push(row(
        "ffn_bwd_dx_512x128x64",
        &serial,
        &pool,
        sampling,
        || h.matmul_nt(&wg),
    ));

    let cfg = ModelConfig {
        vocab: 64,
        dim: 64,
        heads: 4,
        kv_heads: 4,
        ffn_hidden: 128,
        blocks: 1,
        experts: 8,
        top_k: 2,
        seq_len: 512,
        aux_loss_weight: 0.0,
    };
    let mut rng = DetRng::new(2);
    let mut store = LocalExpertStore::new(&cfg, &mut rng);
    let mut block = MoeBlock::new(0, cfg.dim, cfg.experts, cfg.top_k, 0.0, &mut rng);
    let x = Tensor::uniform((512, cfg.dim), -1.0, 1.0, &mut rng);
    rows.push(row("moe_forward_512tok", &serial, &pool, sampling, || {
        block.forward(&x, &mut store)
    }));
    let g = Tensor::ones((512, cfg.dim));
    rows.push(row("moe_fwd_bwd_512tok", &serial, &pool, sampling, || {
        block.forward(&x, &mut store);
        block.backward(&g, &mut store)
    }));

    (threads, rows)
}

fn emit_json(threads: usize, rows: &[Row]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"serial_secs\": {:.9}, \"parallel_secs\": {:.9}, \"speedup\": {:.3}, \"allocs_per_iter\": {}}}",
            r.name,
            r.serial_secs,
            r.parallel_secs,
            r.speedup(),
            r.allocs_per_iter
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Extracts `(name, serial_secs, allocs_per_iter)` triples from a
/// `BENCH_kernels.json` file (the exact format this binary emits; no
/// general JSON parser needed).
fn parse_reference(text: &str) -> Vec<(String, f64, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(spos) = line.find("\"serial_secs\": ") else {
            continue;
        };
        let num = line[spos + 15..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect::<String>();
        let allocs = line
            .find("\"allocs_per_iter\": ")
            .and_then(|apos| {
                line[apos + 19..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse::<u64>()
                    .ok()
            })
            .unwrap_or(u64::MAX);
        if let Ok(secs) = num.parse::<f64>() {
            out.push((name, secs, allocs));
        }
    }
    out
}

/// Compares measured serial times (within `factor`) and steady-state
/// allocation counts (exact budget: any increase over the committed
/// reference fails) against a reference JSON; returns the offending
/// kernels.
fn regressions(rows: &[Row], reference: &[(String, f64, u64)], factor: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for (name, ref_secs, ref_allocs) in reference {
        if let Some(r) = rows.iter().find(|r| r.name == name) {
            if r.serial_secs > ref_secs * factor {
                bad.push(format!(
                    "{name}: serial {:.3e}s vs reference {:.3e}s (> {factor}x)",
                    r.serial_secs, ref_secs
                ));
            }
            if r.allocs_per_iter > *ref_allocs {
                bad.push(format!(
                    "{name}: {} allocs/iter vs reference {ref_allocs} (hot path regressed)",
                    r.allocs_per_iter
                ));
            }
        }
    }
    bad
}

fn main() {
    let mut quick = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_kernels [--quick] [--check FILE]");
                std::process::exit(2);
            }
        }
    }

    let sampling = if quick {
        Sampling {
            samples: 3,
            target_batch_secs: 0.01,
        }
    } else {
        Sampling {
            samples: 5,
            target_batch_secs: 0.05,
        }
    };

    let (threads, rows) = run_all(sampling);

    println!("threads: {threads}");
    for r in &rows {
        println!(
            "{:<24} serial {:>12.3e}s  parallel {:>12.3e}s  speedup {:>6.2}x  allocs/iter {:>6}",
            r.name,
            r.serial_secs,
            r.parallel_secs,
            r.speedup(),
            r.allocs_per_iter
        );
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read reference {path}: {e}");
            std::process::exit(2);
        });
        let reference = parse_reference(&text);
        if reference.is_empty() {
            eprintln!("reference {path} contains no kernel entries");
            std::process::exit(2);
        }
        let bad = regressions(&rows, &reference, 2.0);
        if bad.is_empty() {
            println!("bench check OK: no kernel regressed >2x vs {path}");
        } else {
            eprintln!("bench check FAILED vs {path}:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    }

    if !quick {
        std::fs::write("BENCH_kernels.json", emit_json(threads, &rows))
            .expect("write BENCH_kernels.json");
        println!("wrote BENCH_kernels.json");
    }
}

//! Exchange-pipeline benchmark, emitted as `BENCH_transport.json`.
//!
//! Runs the same VirtualEngine workload (2 workers × 8 experts, so every
//! worker serves a multi-expert shard) across the full
//! {transport × coalesce × microbatch} grid and reports, per row:
//!
//! - `secs_per_step` — minimum wall time per training step across the
//!   run (min, not mean, so one scheduler hiccup cannot poison a row),
//! - `frames_per_step` — wire frames the master hub ships per step; for
//!   coalesced fixed-microbatch rows this must equal the closed form
//!   `blocks · 2 · Σ_w min(mb, items_w) + control` (chunking keeps
//!   per-worker coalescing: one frame per worker per chunk),
//! - `bytes_per_step` — the traffic ledger's logical payload bytes,
//!   which every row must agree on exactly (accounting is transport-,
//!   coalescing- and chunking-independent by construction),
//! - `overlap_efficiency` — exchange wall time divided by the summed
//!   serialize + in-flight pipeline windows (from the
//!   `runtime.pipeline.*` counters, measured in a short instrumented
//!   pass after the timed one). Below 1.0 means the ring genuinely
//!   overlapped serialization with in-flight chunks,
//! - `compute_us_per_step` / `stall_us_per_step` / `wire_us_per_step` —
//!   the same instrumented pass split three ways: worker expert-serve
//!   time, ring-full backpressure, and the wire remainder
//!   (`inflight − stall − compute`, clamped at 0). On the `tcp` rows the
//!   compute column reads 0 by construction: the serve counter
//!   accumulates inside the worker *processes*, not this one, so their
//!   whole inflight window attributes to wire + stall.
//!
//! A third sweep (`replication_rows`) runs a skewed-routing workload
//! twice — single-copy vs `VELA_REPLICATION`-style cost-model replicas —
//! and gates that least-loaded routing over the replicas cuts the
//! straggler index (max/mean routed rows per worker) by ≥20% at equal
//! correctness: both arms route exactly the same total token rows
//! (replication only changes *where* batches go, never how many there
//! are), and the replicated arm's gradient-sync traffic is ledgered
//! separately from the exchange. Exchange *bytes* may legitimately
//! differ between the arms — one worker shares the master's device, and
//! the ledger does not account intra-device traffic, so rebalancing rows
//! on or off that worker shifts the accounted total. Routing is
//! deterministic, so the gate is enforced on every run.
//!
//! A fourth sweep (`migration_rows`) moves a full LoRA expert population
//! between workers on every transport, stop-the-world vs streamed through
//! the writer lanes under training steps (`VELA_MIGRATION=overlap`), and
//! reports how much of the blocking migration wall time the overlap lane
//! keeps off the training loop (`hidden_frac`): sync blocks inside
//! `apply_placement` for the whole transfer, overlap blocks only for the
//! plan announce plus the per-boundary pump/cutover service. The movement
//! work riding inside the window steps is reported separately
//! (`window_overhead_secs`) — behind worker compute when cores are free,
//! visible in that column on a saturated host. The ledger-byte equality
//! of the two modes is deterministic and enforced on every run; the ≥50%
//! hiding gate runs under `--check`.
//!
//! A second, real-tensor sweep (`wire_rows`) runs a fine-grained broker
//! workload — one single-row batch per expert, so per-item framing
//! overhead is at its worst — under each wire format
//! {legacy, packed, packed+int8} and reports *encoded* bytes/step by
//! path. Byte counts are deterministic, so the wire gates (packed cuts
//! total bytes ≥15%, int8 cuts dispatch bytes ≥50%) are enforced on
//! every run, not just `--check`.
//!
//! Usage:
//!   bench_transport               full run, writes BENCH_transport.json
//!   bench_transport --quick       fewer steps, does not write JSON
//!   bench_transport --check FILE  verify invariants against a committed
//!                                 JSON: the row grids match, coalescing
//!                                 cuts frames/step by ≥2x per transport,
//!                                 bytes/step is identical everywhere, and
//!                                 on the channel transport the
//!                                 tuner-chosen chunking (microbatch=auto)
//!                                 is never >10% slower than the fastest
//!                                 fixed row the sweep measured. Fixed
//!                                 microbatch>1 trades 3x the frames for
//!                                 overlap, and this workload has nothing
//!                                 to hide (virtual payloads, echo
//!                                 workers), so fixed rows are reported
//!                                 but only auto — whose whole job is to
//!                                 fall back to one chunk when overlap
//!                                 cannot win — is time-gated
//!
//! Run with `cargo run --release -p vela-bench --bin bench_transport`.
//! The `tcp` rows spawn `vela_worker` processes, so build the whole
//! workspace first (`cargo build --release`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use vela::cluster::TrafficLedger;
use vela::model::provider::ExpertBatch;
use vela::prelude::*;
use vela::runtime::launch::WorkerHandle;
use vela::runtime::transport::build_star;
use vela::runtime::worker::ExpertManager;
use vela::runtime::{BrokerClient, ExchangeConfig, Microbatch, Quant, WireFormat};

const WORKERS: usize = 2;
const BLOCKS: usize = 2;
const EXPERTS: usize = 8;
/// Steps of the short instrumented pass that feeds `overlap_efficiency`.
const COUNTER_STEPS: usize = 4;

struct Row {
    transport: &'static str,
    coalesce: bool,
    microbatch: Microbatch,
    secs_per_step: f64,
    frames_per_step: f64,
    bytes_per_step: u64,
    overlap_efficiency: f64,
    compute_us_per_step: f64,
    stall_us_per_step: f64,
    wire_us_per_step: f64,
}

impl Row {
    fn key(&self) -> (String, bool, String) {
        (
            self.transport.to_string(),
            self.coalesce,
            self.microbatch.label(),
        )
    }
}

fn spec() -> MoeSpec {
    MoeSpec {
        blocks: BLOCKS,
        experts: EXPERTS,
        top_k: 2,
        hidden: 1024,
        ffn: 4096,
        bits: 16,
    }
}

fn launch(transport: TransportConfig, exchange: ExchangeConfig) -> VirtualEngine {
    let spec = spec();
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 1e-3,
        ..ScaleConfig::paper_default(spec)
    };
    let profile = LocalityProfile::synthetic("bench", spec.blocks, spec.experts, 1.2, 17);
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % WORKERS).collect())
            .collect(),
        WORKERS,
    );
    let mut engine = VirtualEngine::launch_with(
        transport,
        Topology::paper_testbed(),
        DeviceId(0),
        (0..WORKERS).map(DeviceId).collect(),
        placement,
        profile,
        scale,
    );
    engine.set_exchange(exchange);
    engine
}

/// Cumulative value of a `runtime.pipeline.*` counter.
fn pipeline_counter(snapshot: &[(String, u64)], name: &str) -> u64 {
    snapshot
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |&(_, v)| v)
}

fn run_row(
    transport: TransportConfig,
    label: &'static str,
    exchange: ExchangeConfig,
    steps: usize,
) -> Row {
    let mut engine = launch(transport, exchange);
    let (frames_before, _) = engine.frame_counts();
    let mut best = f64::INFINITY;
    let mut bytes = 0u64;
    for _ in 0..steps {
        let t0 = Instant::now();
        let m = engine.step();
        best = best.min(t0.elapsed().as_secs_f64());
        bytes += m.traffic.total_bytes;
    }
    let (frames_after, _) = engine.frame_counts();

    // A short instrumented pass on the same engine: the pipeline counters
    // tell us how much of the exchange wall time was covered by
    // serialize + in-flight windows. Kept out of the timed loop so the
    // timings stay probe-free.
    vela::obs::set_mode(vela::obs::TraceMode::Counters);
    let before = vela::obs::counter_snapshot();
    for _ in 0..COUNTER_STEPS {
        engine.step();
    }
    let after = vela::obs::counter_snapshot();
    vela::obs::set_mode(vela::obs::TraceMode::Off);
    engine.shutdown();

    let delta = |name: &str| pipeline_counter(&after, name) - pipeline_counter(&before, name);
    let exchange_us = delta("runtime.pipeline.exchange_us");
    let covered_us = delta("runtime.pipeline.serialize_us") + delta("runtime.pipeline.inflight_us");
    let overlap_efficiency = if covered_us > 0 {
        exchange_us as f64 / covered_us as f64
    } else {
        0.0
    };
    // Phase attribution of the inflight window. The serve counter only
    // advances in *this* process, so the tcp rows (worker processes)
    // report compute 0 and fold it into the wire remainder.
    let inflight_us = delta("runtime.pipeline.inflight_us");
    let serve_us = delta("runtime.worker.serve_us");
    let stall_us = delta("runtime.pipeline.stall_us");
    let per_step = |us: u64| us as f64 / COUNTER_STEPS as f64;

    Row {
        transport: label,
        coalesce: exchange.coalesce,
        microbatch: exchange.microbatch,
        secs_per_step: best,
        frames_per_step: (frames_after - frames_before) as f64 / steps as f64,
        bytes_per_step: bytes / steps as u64,
        overlap_efficiency,
        compute_us_per_step: per_step(serve_us),
        stall_us_per_step: per_step(stall_us),
        wire_us_per_step: per_step(inflight_us.saturating_sub(stall_us + serve_us)),
    }
}

fn run_all(steps: usize) -> Vec<Row> {
    let transports: [(&'static str, fn() -> TransportConfig); 3] = [
        ("channel", TransportConfig::channel),
        ("tcp-threads", TransportConfig::tcp_threads),
        ("tcp", TransportConfig::tcp_processes),
    ];
    let shapes: [(bool, Microbatch); 6] = [
        (false, Microbatch::Fixed(1)),
        (true, Microbatch::Fixed(1)),
        (true, Microbatch::Fixed(2)),
        (true, Microbatch::Fixed(4)),
        (true, Microbatch::Fixed(8)),
        (true, Microbatch::Auto),
    ];
    let mut rows = Vec::new();
    for (label, transport) in transports {
        for (coalesce, microbatch) in shapes {
            let exchange = ExchangeConfig {
                coalesce,
                microbatch,
                ..ExchangeConfig::default()
            };
            rows.push(run_row(transport(), label, exchange, steps));
        }
    }
    rows
}

/// Experts in the wire-format sweep's fine-grained workload.
const WIRE_EXPERTS: usize = 32;
/// MoE blocks in the wire-format sweep.
const WIRE_BLOCKS: usize = 2;
/// Feature width of the wire-format sweep (small on purpose: per-item
/// framing overhead is largest when rows are short).
const WIRE_DIM: usize = 8;
/// Steps of the wire-format sweep (byte counts are deterministic, so a
/// few steps suffice).
const WIRE_STEPS: usize = 4;

/// One wire-format row: encoded bytes per step on a real-tensor broker
/// workload, by path. Unlike `bytes_per_step` (the ledger's accounted
/// view, identical across all rows by design), these are the bytes
/// serialization actually produced — the quantity `VELA_WIRE` and
/// `VELA_QUANT` exist to shrink.
struct WireRow {
    wire: &'static str,
    dispatch_bytes_per_step: u64,
    result_bytes_per_step: u64,
    total_bytes_per_step: u64,
}

/// Runs the fine-grained broker workload — one single-row batch per
/// expert, `WIRE_EXPERTS` experts over two channel-backed workers — under
/// one wire format and measures encoded bytes per step.
fn run_wire_row(label: &'static str, wire: WireFormat, quant: Quant) -> WireRow {
    let cfg = ModelConfig {
        vocab: 32,
        dim: WIRE_DIM,
        heads: 1,
        kv_heads: 1,
        ffn_hidden: WIRE_DIM,
        blocks: WIRE_BLOCKS,
        experts: WIRE_EXPERTS,
        top_k: 2,
        seq_len: 8,
        aux_loss_weight: 0.0,
    };
    let mut rng = DetRng::new(40);
    let mut population = LocalExpertStore::new(&cfg, &mut rng);
    let mut shards: Vec<LocalExpertStore> = (0..WORKERS)
        .map(|_| LocalExpertStore::empty(cfg.blocks, cfg.experts))
        .collect();
    for l in 0..cfg.blocks {
        for e in 0..cfg.experts {
            shards[e % WORKERS].insert(l, e, population.take(l, e));
        }
    }
    let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
    let devices: Vec<DeviceId> = (0..WORKERS).map(DeviceId).collect();
    let (hub, ports) = build_star(TransportConfig::channel(), ledger, DeviceId(0), &devices)
        .expect("channel star");
    let workers: Vec<WorkerHandle> = ports
        .into_iter()
        .zip(shards)
        .map(|(port, shard)| {
            WorkerHandle::Thread(ExpertManager::spawn(port, shard, AdamWConfig::default()))
        })
        .collect();
    let placement = Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % WORKERS).collect())
            .collect(),
        WORKERS,
    );
    let mut broker = BrokerClient::new(hub, placement);
    broker.set_exchange(ExchangeConfig {
        wire,
        quant,
        ..ExchangeConfig::default()
    });

    let mut mk_batches = || -> Vec<ExpertBatch> {
        (0..cfg.experts)
            .map(|e| ExpertBatch {
                expert: e,
                xs: Tensor::uniform((1, cfg.dim), -1.0, 1.0, &mut rng),
            })
            .collect()
    };
    let batches = mk_batches();
    let grads = mk_batches();
    for _ in 0..WIRE_STEPS {
        broker.step_begin().expect("step begin");
        for block in 0..cfg.blocks {
            let _ = broker.forward_block(block, &batches);
            let _ = broker.backward_block(block, &grads);
        }
        broker.step_end_and_wait().expect("step end");
    }
    let stats = broker.wire_stats();
    broker.shutdown().expect("worker shutdown");
    for w in workers {
        w.finish();
    }
    let per_step = |b: u64| b / WIRE_STEPS as u64;
    WireRow {
        wire: label,
        dispatch_bytes_per_step: per_step(stats.dispatch_total()),
        result_bytes_per_step: per_step(stats.result_header + stats.result_payload),
        total_bytes_per_step: per_step(stats.total()),
    }
}

fn run_wire_rows() -> Vec<WireRow> {
    vec![
        run_wire_row("legacy", WireFormat::Legacy, Quant::Off),
        run_wire_row("packed", WireFormat::Packed, Quant::Off),
        run_wire_row("packed+int8", WireFormat::Packed, Quant::Int8),
    ]
}

/// Workers in the replication sweep (more workers than the pipeline grid
/// so a hot expert's worker visibly straggles).
const REPL_WORKERS: usize = 4;
/// Steps of the replication sweep (routing is deterministic; a few steps
/// pin the straggler index exactly).
const REPL_STEPS: usize = 6;

/// One replication-sweep row: the same skewed-routing workload run
/// single-copy and with cost-model replicas.
struct ReplRow {
    mode: &'static str,
    max_degree: usize,
    avg_degree: f64,
    straggler_index: f64,
    routed_rows: u64,
    sync_bytes_per_step: u64,
    exchange_bytes_per_step: u64,
}

/// Runs the skewed workload on `placement` and measures the routed-row
/// straggler index (max/mean rows per worker) plus the ledger's split of
/// exchange vs replica-sync bytes.
fn run_repl_row(mode: &'static str, placement: ReplicatedPlacement) -> ReplRow {
    let spec = spec();
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 1e-3,
        ..ScaleConfig::paper_default(spec)
    };
    let (max_degree, avg_degree) = (placement.max_degree(), placement.avg_degree());
    let mut engine = VirtualEngine::launch_with(
        TransportConfig::channel(),
        Topology::paper_testbed(),
        DeviceId(0),
        (0..REPL_WORKERS).map(DeviceId).collect(),
        placement,
        skew_profile(),
        scale,
    );
    let mut sync = 0u64;
    let mut exchange = 0u64;
    for _ in 0..REPL_STEPS {
        let m = engine.step();
        sync += m.traffic.sync_bytes;
        exchange += m.traffic.total_bytes - m.traffic.sync_bytes;
    }
    let straggler_index = engine.straggler_index();
    let routed_rows = engine.routed_rows();
    engine.shutdown();
    ReplRow {
        mode,
        max_degree,
        avg_degree,
        straggler_index,
        routed_rows,
        sync_bytes_per_step: sync / REPL_STEPS as u64,
        exchange_bytes_per_step: exchange / REPL_STEPS as u64,
    }
}

/// A heavily concentrated access profile: the routing mix that makes a
/// single-owner placement straggle on the hot experts' worker.
fn skew_profile() -> LocalityProfile {
    let spec = spec();
    LocalityProfile::synthetic("skew", spec.blocks, spec.experts, 1.5, 3)
}

/// The single-copy baseline vs the cost model's budgeted replicas, on an
/// identical skewed workload.
fn run_repl_rows() -> Vec<ReplRow> {
    let spec = spec();
    let base = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % REPL_WORKERS).collect())
            .collect(),
        REPL_WORKERS,
    );
    let topology = Topology::paper_testbed();
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 1e-3,
        ..ScaleConfig::paper_default(spec)
    };
    let problem = PlacementProblem::new(
        topology,
        DeviceId(0),
        (0..REPL_WORKERS).map(DeviceId).collect(),
        skew_profile().to_matrix(),
        (scale.tokens() * spec.top_k) as f64,
        spec.token_bytes(),
        vec![spec.blocks * spec.experts / REPL_WORKERS + 4; REPL_WORKERS],
    );
    vec![
        run_repl_row("single-copy", ReplicatedPlacement::from(&base)),
        run_repl_row(
            "replicated",
            ReplicationConfig::Budget { frac: 1.0 }.apply(&base, &problem),
        ),
    ]
}

/// The replication gate: under the skewed routing mix, least-loaded
/// routing over the cost model's replicas must cut the straggler index by
/// ≥20% vs the single-copy baseline — at equal correctness, witnessed by
/// the routed-row total: both arms dispatch exactly the same token rows
/// (replicas change only *where* batches go, never how many there are),
/// and only the replicated arm pays ledgered sync traffic on top.
/// Exchange *bytes* are deliberately not compared: worker 0 shares the
/// master's device, whose traffic the ledger leaves unaccounted, so
/// moving rows on or off it shifts accounted bytes without moving a
/// single extra token. Routing and the profile are deterministic, so
/// this gate cannot flake.
fn replication_violations(rows: &[ReplRow]) -> Vec<String> {
    let mut bad = Vec::new();
    let find = |mode: &str| rows.iter().find(|r| r.mode == mode);
    let (Some(single), Some(multi)) = (find("single-copy"), find("replicated")) else {
        return vec!["replication sweep: missing single-copy/replicated rows".into()];
    };
    if single.max_degree != 1 || single.sync_bytes_per_step != 0 {
        bad.push(format!(
            "single-copy row has degree {} and {} sync bytes/step; both must be trivial",
            single.max_degree, single.sync_bytes_per_step
        ));
    }
    if multi.max_degree < 2 || multi.sync_bytes_per_step == 0 {
        bad.push(format!(
            "replicated row has degree {} and {} sync bytes/step; the budget must buy \
             real replicas and their sync must be on the ledger",
            multi.max_degree, multi.sync_bytes_per_step
        ));
    }
    if single.routed_rows != multi.routed_rows {
        bad.push(format!(
            "routed rows diverge: {} single-copy vs {} replicated — replication must \
             not change what the exchange moves, only where",
            single.routed_rows, multi.routed_rows
        ));
    }
    let cut = 1.0 - multi.straggler_index / single.straggler_index;
    if cut < 0.20 {
        bad.push(format!(
            "straggler index only improved {:.1}% ({:.3} -> {:.3}), need >=20% under \
             skewed routing",
            100.0 * cut,
            single.straggler_index,
            multi.straggler_index
        ));
    }
    bad
}

/// The wire-format gates: on the fine-grained dispatch workload the
/// packed layout must cut total encoded bytes/step by ≥15% vs legacy,
/// and int8 quantization must cut the dispatch path by ≥50%. Byte
/// counts are deterministic (fixed routing, fixed shapes), so these
/// gates cannot flake.
fn wire_violations(rows: &[WireRow]) -> Vec<String> {
    let mut bad = Vec::new();
    let find = |label: &str| rows.iter().find(|r| r.wire == label);
    let (Some(legacy), Some(packed), Some(int8)) =
        (find("legacy"), find("packed"), find("packed+int8"))
    else {
        return vec!["wire sweep: missing legacy/packed/packed+int8 rows".into()];
    };
    let reduction = |from: u64, to: u64| 1.0 - to as f64 / from.max(1) as f64;
    let total_cut = reduction(legacy.total_bytes_per_step, packed.total_bytes_per_step);
    if total_cut < 0.15 {
        bad.push(format!(
            "packed wire: only {:.1}% total bytes/step reduction vs legacy ({} -> {}), need >=15%",
            100.0 * total_cut,
            legacy.total_bytes_per_step,
            packed.total_bytes_per_step
        ));
    }
    let dispatch_cut = reduction(legacy.dispatch_bytes_per_step, int8.dispatch_bytes_per_step);
    if dispatch_cut < 0.50 {
        bad.push(format!(
            "packed+int8 wire: only {:.1}% dispatch bytes/step reduction vs legacy ({} -> {}), need >=50%",
            100.0 * dispatch_cut,
            legacy.dispatch_bytes_per_step,
            int8.dispatch_bytes_per_step
        ));
    }
    bad
}

/// Steps used to pin the pre-migration baseline step time (min of N).
const MIG_BASELINE_STEPS: usize = 3;
/// Migration cycles per arm: every cycle moves the whole population to
/// the other worker and the timing keeps the best (least noisy) cycle.
const MIG_CYCLES: usize = 2;
/// Safety cap on the overlap window (lanes that never install are a bug).
const MIG_WINDOW_CAP: usize = 64;

/// One migration-sweep row: the same full-population move executed
/// stop-the-world (`sync`) or streamed through the writer lanes under
/// training steps (`overlap`).
struct MigRow {
    transport: &'static str,
    mode: &'static str,
    /// Pre-migration step time, min over `MIG_BASELINE_STEPS` steps.
    baseline_secs_per_step: f64,
    /// Wall time inside `apply_placement` (best cycle).
    apply_secs: f64,
    /// Wall time the training loop was *blocked* on parameter movement
    /// (best cycle): the whole transfer in sync mode; the apply call plus
    /// the per-boundary pump/cutover service in overlap mode, read from
    /// `RealRuntime::migration_blocked_secs`. The chunk streams ride the
    /// step windows and are charged to `window_overhead_secs` instead.
    exposed_secs: f64,
    /// Over-baseline wall time of the window steps, summed (best cycle):
    /// the movement work that rode *inside* training steps. On a
    /// multi-core host this hides behind worker compute; on a saturated
    /// single core it shows up here — reported so nothing is concealed.
    window_overhead_secs: f64,
    /// Steps the install window spanned, averaged over cycles.
    window_steps: f64,
    /// Migration-bucket ledger bytes summed over all cycles
    /// (deterministic — must match the other mode exactly).
    migration_bytes: u64,
    /// Overlap rows: `1 − exposed/sync_exposed` for the same transport —
    /// the fraction of the stop-the-world blocking time that no longer
    /// blocks the training loop (training proceeds while the lanes
    /// stream).
    hidden_frac: f64,
}

/// A model heavy enough that moving its experts is measurable: each
/// expert's FFN weights are several hundred KiB, so a full-population
/// move streams megabytes through the chunked lanes. LoRA fine-tuning
/// keeps the per-step gradient (and lane lockstep) traffic small — the
/// regime the paper targets.
fn mig_cfg() -> ModelConfig {
    ModelConfig {
        vocab: 64,
        dim: 64,
        heads: 2,
        kv_heads: 2,
        ffn_hidden: 1024,
        blocks: 2,
        experts: 8,
        top_k: 2,
        seq_len: 32,
        aux_loss_weight: 0.0,
    }
}

fn run_mig_arm(transport: TransportConfig, label: &'static str, overlap: bool) -> MigRow {
    use vela::model::finetune::prepare_for_finetune;
    let cfg = mig_cfg();
    let mut rng = DetRng::new(60);
    let (mut model, mut experts) = MoeModel::new(&cfg, &mut rng);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(61),
    );
    // `flip = false` is the launch placement; `true` moves every expert
    // to the other worker.
    let place = |flip: bool| {
        Placement::new(
            (0..cfg.blocks)
                .map(|_| {
                    (0..cfg.experts)
                        .map(|e| (e + flip as usize) % WORKERS)
                        .collect()
                })
                .collect(),
            WORKERS,
        )
    };
    let mut rt = RealRuntime::launch_with(
        transport,
        model,
        experts,
        place(false),
        Topology::paper_testbed(),
        DeviceId(0),
        vec![DeviceId(1), DeviceId(2)],
        AdamWConfig::default(),
    );
    if overlap {
        rt.set_migration(MigrationMode::Overlap);
    }
    let n = 2 * cfg.seq_len;
    let inputs: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    let targets: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    let step = |rt: &mut RealRuntime| {
        let t0 = Instant::now();
        let m = rt
            .train_step(&inputs, &targets, 2, cfg.seq_len)
            .expect("transport failed mid-step");
        (t0.elapsed().as_secs_f64(), m)
    };

    let mut baseline = f64::INFINITY;
    for _ in 0..MIG_BASELINE_STEPS {
        baseline = baseline.min(step(&mut rt).0);
    }

    let mut bytes = 0u64;
    let mut best_apply = f64::INFINITY;
    let mut best_exposed = f64::INFINITY;
    let mut best_overhead = f64::INFINITY;
    let mut windows = 0usize;
    for cycle in 0..MIG_CYCLES {
        let target = place(cycle % 2 == 0);
        let blocked0 = rt.migration_blocked_secs();
        let t0 = Instant::now();
        let handle = rt.apply_placement(&target).expect("migration failed");
        let apply = t0.elapsed().as_secs_f64();
        bytes += handle.traffic.migration_bytes;
        let mut overhead = 0.0;
        let mut window = 0usize;
        while rt.migrations_in_flight() > 0 {
            assert!(window < MIG_WINDOW_CAP, "lanes never finished installing");
            let (t, m) = step(&mut rt);
            if std::env::var_os("MIG_DEBUG").is_some() {
                eprintln!(
                    "  [mig {label} {}] cycle {cycle} window step {window}: {:.1}ms (baseline {:.1}ms) mig {} sync {}",
                    if overlap { "overlap" } else { "sync" },
                    t * 1e3,
                    baseline * 1e3,
                    m.traffic.migration_bytes,
                    m.traffic.sync_bytes,
                );
            }
            bytes += m.traffic.migration_bytes;
            overhead += (t - baseline).max(0.0);
            window += 1;
        }
        // Blocked time: the sync transfer runs entirely inside apply; the
        // overlap arm adds only the per-boundary pump/cutover service the
        // runtime clocked while the lanes streamed under the steps above.
        let exposed = apply + (rt.migration_blocked_secs() - blocked0 - apply).max(0.0);
        windows += window;
        best_apply = best_apply.min(apply);
        best_exposed = best_exposed.min(exposed);
        best_overhead = best_overhead.min(overhead);
    }
    rt.shutdown();
    MigRow {
        transport: label,
        mode: if overlap { "overlap" } else { "sync" },
        baseline_secs_per_step: baseline,
        apply_secs: best_apply,
        exposed_secs: best_exposed,
        window_overhead_secs: best_overhead,
        window_steps: windows as f64 / MIG_CYCLES as f64,
        migration_bytes: bytes,
        hidden_frac: 0.0,
    }
}

/// The sync/overlap migration sweep per transport. Each overlap row's
/// `hidden_frac` compares its exposed time against the sync row on the
/// same transport.
fn run_mig_rows() -> Vec<MigRow> {
    let transports: [(&'static str, fn() -> TransportConfig); 3] = [
        ("channel", TransportConfig::channel),
        ("tcp-threads", TransportConfig::tcp_threads),
        ("tcp", TransportConfig::tcp_processes),
    ];
    let mut rows = Vec::new();
    for (label, transport) in transports {
        let sync = run_mig_arm(transport(), label, false);
        let mut over = run_mig_arm(transport(), label, true);
        over.hidden_frac = 1.0 - over.exposed_secs / sync.exposed_secs.max(1e-12);
        rows.push(sync);
        rows.push(over);
    }
    rows
}

/// Deterministic migration invariants, enforced on every run: the
/// overlap lane must move exactly the ledger bytes the stop-the-world
/// path moves (the lane protocol is accounted frame for frame), it must
/// actually overlap (a window of ≥1 training step), and the sync path
/// must finish inside `apply_placement` (no window at all).
fn migration_violations(rows: &[MigRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for transport in ["channel", "tcp-threads", "tcp"] {
        let find = |mode: &str| {
            rows.iter()
                .find(|r| r.transport == transport && r.mode == mode)
        };
        let (Some(sync), Some(over)) = (find("sync"), find("overlap")) else {
            bad.push(format!("{transport}: missing sync/overlap migration rows"));
            continue;
        };
        if sync.migration_bytes != over.migration_bytes {
            bad.push(format!(
                "{transport}: overlap migration moved {} ledger bytes, sync moved {} — the \
                 lane protocol must account identically",
                over.migration_bytes, sync.migration_bytes
            ));
        }
        if sync.migration_bytes == 0 {
            bad.push(format!(
                "{transport}: migration sweep moved no ledger bytes"
            ));
        }
        if sync.window_steps != 0.0 {
            bad.push(format!(
                "{transport}: sync migration left {} window steps; it must complete inside \
                 apply_placement",
                sync.window_steps
            ));
        }
        if over.window_steps < 1.0 {
            bad.push(format!(
                "{transport}: overlap migration installed without spanning a training step \
                 ({} window steps) — nothing overlapped",
                over.window_steps
            ));
        }
    }
    bad
}

/// The `--check` migration gate: streaming the move under training steps
/// must take at least half of the stop-the-world blocking time off the
/// training loop — overlap `exposed` (apply + boundary pump/cutover
/// stalls) vs the sync arm's blocking `apply_placement`. The movement
/// work that rides inside the window steps is reported separately as
/// `window_overhead_secs` (it hides behind worker compute when cores are
/// free and is visible in that column when they are not). Byte equality
/// is enforced unconditionally in [`migration_violations`]; only this
/// timing half lives behind `--check`, like the auto-chunking gate.
fn migration_timing_violations(rows: &[MigRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in rows.iter().filter(|r| r.mode == "overlap") {
        if r.hidden_frac < 0.5 {
            bad.push(format!(
                "{}: overlap migration keeps {:.1}% of the sync blocking time off the \
                 training loop ({:.3} ms still exposed), need >=50%",
                r.transport,
                100.0 * r.hidden_frac,
                r.exposed_secs * 1e3
            ));
        }
    }
    bad
}

fn emit_json(
    steps: usize,
    rows: &[Row],
    wire_rows: &[WireRow],
    repl_rows: &[ReplRow],
    mig_rows: &[MigRow],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(
        json,
        "  \"pipeline_depth\": {},",
        ExchangeConfig::default().depth
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"transport\": \"{}\", \"coalesce\": {}, \"microbatch\": \"{}\", \"secs_per_step\": {:.9}, \"frames_per_step\": {:.1}, \"bytes_per_step\": {}, \"overlap_efficiency\": {:.3}, \"compute_us_per_step\": {:.1}, \"stall_us_per_step\": {:.1}, \"wire_us_per_step\": {:.1}}}",
            r.transport, r.coalesce, r.microbatch.label(), r.secs_per_step, r.frames_per_step, r.bytes_per_step, r.overlap_efficiency, r.compute_us_per_step, r.stall_us_per_step, r.wire_us_per_step
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"wire_rows\": [\n");
    for (i, r) in wire_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"wire\": \"{}\", \"dispatch_bytes_per_step\": {}, \"result_bytes_per_step\": {}, \"total_bytes_per_step\": {}}}",
            r.wire, r.dispatch_bytes_per_step, r.result_bytes_per_step, r.total_bytes_per_step
        );
        json.push_str(if i + 1 < wire_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"replication_rows\": [\n");
    for (i, r) in repl_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"max_degree\": {}, \"avg_degree\": {:.3}, \"straggler_index\": {:.4}, \"routed_rows\": {}, \"sync_bytes_per_step\": {}, \"exchange_bytes_per_step\": {}}}",
            r.mode, r.max_degree, r.avg_degree, r.straggler_index, r.routed_rows, r.sync_bytes_per_step, r.exchange_bytes_per_step
        );
        json.push_str(if i + 1 < repl_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"migration_rows\": [\n");
    for (i, r) in mig_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"transport\": \"{}\", \"mode\": \"{}\", \"baseline_secs_per_step\": {:.9}, \"apply_secs\": {:.9}, \"exposed_secs\": {:.9}, \"window_overhead_secs\": {:.9}, \"window_steps\": {:.1}, \"migration_bytes\": {}, \"hidden_frac\": {:.3}}}",
            r.transport, r.mode, r.baseline_secs_per_step, r.apply_secs, r.exposed_secs, r.window_overhead_secs, r.window_steps, r.migration_bytes, r.hidden_frac
        );
        json.push_str(if i + 1 < mig_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Extracts `(transport, mode)` keys of the `migration_rows` section from
/// a `BENCH_transport.json` file. Migration rows are the only lines that
/// carry both a `transport` and a `mode` field (pipeline rows have no
/// mode; replication rows have no transport).
fn parse_reference_migration_keys(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(tpos) = line.find("\"transport\": \"") else {
            continue;
        };
        let trest = &line[tpos + 14..];
        let Some(tend) = trest.find('"') else {
            continue;
        };
        let Some(mpos) = line.find("\"mode\": \"") else {
            continue;
        };
        let mrest = &line[mpos + 9..];
        let Some(mend) = mrest.find('"') else {
            continue;
        };
        out.push((trest[..tend].to_string(), mrest[..mend].to_string()));
    }
    out
}

/// Extracts the `wire` labels of the `wire_rows` section from a
/// `BENCH_transport.json` file (the exact format this binary emits).
fn parse_reference_wire_keys(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(pos) = line.find("\"wire\": \"") else {
            continue;
        };
        let rest = &line[pos + 9..];
        let Some(end) = rest.find('"') else { continue };
        out.push(rest[..end].to_string());
    }
    out
}

/// Extracts `(transport, coalesce, microbatch)` row keys from a
/// `BENCH_transport.json` file (the exact format this binary emits).
fn parse_reference_keys(text: &str) -> Vec<(String, bool, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(tpos) = line.find("\"transport\": \"") else {
            continue;
        };
        let rest = &line[tpos + 14..];
        let Some(tend) = rest.find('"') else { continue };
        let transport = rest[..tend].to_string();
        let Some(cpos) = line.find("\"coalesce\": ") else {
            continue;
        };
        let coalesce = line[cpos + 12..].starts_with("true");
        let Some(mpos) = line.find("\"microbatch\": \"") else {
            continue;
        };
        let mrest = &line[mpos + 15..];
        let Some(mend) = mrest.find('"') else {
            continue;
        };
        out.push((transport, coalesce, mrest[..mend].to_string()));
    }
    out
}

/// Wire frames one step must ship: `blocks · 2 passes` block-exchanges of
/// one frame per worker per chunk, plus the `StepBegin`/`StepEnd` control
/// broadcasts. Each worker serves `EXPERTS / WORKERS` experts here, so a
/// fixed microbatch of `mb` makes `min(mb, items_w)` chunks per worker.
/// `None` for shapes whose frame count is not pinned (auto picks its own
/// chunk count).
fn expected_frames(coalesce: bool, microbatch: Microbatch) -> Option<f64> {
    let control = 2 * WORKERS;
    let items_per_worker = EXPERTS / WORKERS;
    match (coalesce, microbatch.fixed()) {
        // Per-batch framing ignores chunking: one frame per expert batch.
        (false, _) => Some((BLOCKS * 2 * EXPERTS + control) as f64),
        (true, Some(mb)) => {
            Some((BLOCKS * 2 * WORKERS * mb.min(items_per_worker) + control) as f64)
        }
        (true, None) => None,
    }
}

/// The structural invariants the exchange pipeline must uphold, checked
/// on the *measured* rows (the reference file only pins the expected
/// grid):
///
/// 1. coalescing reduces frames/step by at least 2x per transport
///    (microbatch=1 rows compared, so the ratio is not diluted),
/// 2. every row ships exactly the frames the closed form predicts — a
///    chunked block-pass still coalesces per worker (the regression this
///    formula guards against degenerated chunked rows to per-item
///    frames), and
/// 3. every row accounts exactly the same bytes/step.
fn violations(rows: &[Row]) -> Vec<String> {
    let mut bad = Vec::new();
    let find = |transport: &str, coalesce: bool| {
        rows.iter().find(|r| {
            r.transport == transport
                && r.coalesce == coalesce
                && r.microbatch == Microbatch::Fixed(1)
        })
    };
    for transport in ["channel", "tcp-threads", "tcp"] {
        let (Some(per_batch), Some(coalesced)) = (find(transport, false), find(transport, true))
        else {
            bad.push(format!("{transport}: missing microbatch=1 rows"));
            continue;
        };
        if coalesced.frames_per_step * 2.0 > per_batch.frames_per_step {
            bad.push(format!(
                "{transport}: coalescing only shrinks frames/step {:.1} -> {:.1} (< 2x)",
                per_batch.frames_per_step, coalesced.frames_per_step
            ));
        }
    }
    for r in rows {
        if let Some(expected) = expected_frames(r.coalesce, r.microbatch) {
            if (r.frames_per_step - expected).abs() > 1e-9 {
                bad.push(format!(
                    "({}, coalesce={}, microbatch={}): {:.1} frames/step, closed form says {expected} \
                     (chunking must keep per-worker coalescing)",
                    r.transport, r.coalesce, r.microbatch, r.frames_per_step
                ));
            }
        }
    }
    let reference_bytes = rows.first().map_or(0, |r| r.bytes_per_step);
    for r in rows {
        if r.bytes_per_step != reference_bytes {
            bad.push(format!(
                "({}, coalesce={}, microbatch={}): {} bytes/step != {} (ledger must be exchange-shape independent)",
                r.transport, r.coalesce, r.microbatch, r.bytes_per_step, reference_bytes
            ));
        }
    }
    bad
}

/// The `--check` timing gate: on the channel transport (the only backend
/// quiet enough to gate), `microbatch=auto` may never settle on a
/// chunking the sweep itself measured as slower — the auto row's frame
/// shape must match the *fastest* fixed coalesced row's, not a slower
/// one's.
///
/// The comparison is on frames/step rather than the auto row's own wall
/// time: frame counts are a deterministic fingerprint of the chunk count
/// the tuner picked, while a single row's µs/step jitters enough on a
/// shared machine (especially under `--quick`) to fail runs whose tuner
/// made exactly the right call. Fixed `microbatch>1` rows are
/// deliberately not time-gated against each other on this workload:
/// virtual payloads serialize in microseconds and echo workers do no
/// compute, so there is nothing for extra chunks to overlap and their 3x
/// frame count is pure cost. `auto` exists precisely to detect that and
/// fall back to one chunk — so it is held to the best fixed row,
/// whichever one that measured to be.
fn timing_violations(rows: &[Row]) -> Vec<String> {
    let mut bad = Vec::new();
    let fixed: Vec<&Row> = rows
        .iter()
        .filter(|r| r.transport == "channel" && r.coalesce && r.microbatch.fixed().is_some())
        .collect();
    let auto = rows
        .iter()
        .find(|r| r.transport == "channel" && r.coalesce && r.microbatch == Microbatch::Auto);
    let (Some(auto), Some(best)) = (
        auto,
        fixed
            .iter()
            .min_by(|a, b| a.secs_per_step.total_cmp(&b.secs_per_step)),
    ) else {
        return vec!["channel: missing coalesced fixed/auto rows".into()];
    };
    if auto.frames_per_step > best.frames_per_step + 1e-9 {
        bad.push(format!(
            "channel microbatch=auto: {:.1} frames/step means the tuner chunked harder than \
             the fastest fixed chunking (microbatch={}, {:.1} frames/step, {:.1}us/step) — \
             auto must never select a chunking the sweep measured as slower",
            auto.frames_per_step,
            best.microbatch,
            best.frames_per_step,
            best.secs_per_step * 1e6,
        ));
    }
    bad
}

fn main() {
    let mut quick = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_transport [--quick] [--check FILE]");
                std::process::exit(2);
            }
        }
    }

    let steps = if quick { 5 } else { 20 };
    let rows = run_all(steps);
    let wire_rows = run_wire_rows();
    let repl_rows = run_repl_rows();
    let mig_rows = run_mig_rows();

    println!("steps: {steps}, workers: {WORKERS}");
    for r in &rows {
        println!(
            "{:<12} coalesce {:<5} microbatch {:<4}  {:>10.3e}s/step  {:>7.1} frames/step  {:>10} bytes/step  overlap {:>5.3}  compute {:>7.1}µs  stall {:>6.1}µs  wire {:>7.1}µs",
            r.transport,
            r.coalesce,
            r.microbatch.label(),
            r.secs_per_step,
            r.frames_per_step,
            r.bytes_per_step,
            r.overlap_efficiency,
            r.compute_us_per_step,
            r.stall_us_per_step,
            r.wire_us_per_step
        );
    }
    println!("wire sweep ({WIRE_EXPERTS} single-row experts x {WIRE_BLOCKS} blocks, dim {WIRE_DIM}, channel):");
    for r in &wire_rows {
        println!(
            "{:<12} {:>8} dispatch bytes/step  {:>8} result bytes/step  {:>8} total bytes/step",
            r.wire, r.dispatch_bytes_per_step, r.result_bytes_per_step, r.total_bytes_per_step
        );
    }
    println!("replication sweep (skewed routing, {REPL_WORKERS} workers, channel):");
    for r in &repl_rows {
        println!(
            "{:<12} degree max {} avg {:.2}  straggler {:>5.3}  {:>8} rows  {:>9} sync bytes/step  {:>10} exchange bytes/step",
            r.mode,
            r.max_degree,
            r.avg_degree,
            r.straggler_index,
            r.routed_rows,
            r.sync_bytes_per_step,
            r.exchange_bytes_per_step
        );
    }

    println!("migration sweep ({MIG_CYCLES} full-population moves per arm, LoRA experts):");
    for r in &mig_rows {
        println!(
            "{:<12} {:<8} baseline {:>8.1}µs/step  apply {:>9.1}µs  exposed {:>9.1}µs  in-window {:>9.1}µs  window {:>4.1} steps  {:>9} bytes  hidden {:>5.1}%",
            r.transport,
            r.mode,
            r.baseline_secs_per_step * 1e6,
            r.apply_secs * 1e6,
            r.exposed_secs * 1e6,
            r.window_overhead_secs * 1e6,
            r.window_steps,
            r.migration_bytes,
            100.0 * r.hidden_frac
        );
    }

    let mut bad = violations(&rows);
    bad.extend(wire_violations(&wire_rows));
    bad.extend(replication_violations(&repl_rows));
    bad.extend(migration_violations(&mig_rows));
    if let Some(path) = &check {
        bad.extend(timing_violations(&rows));
        bad.extend(migration_timing_violations(&mig_rows));
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read reference {path}: {e}");
            std::process::exit(2);
        });
        let mut want = parse_reference_keys(&text);
        let mut have: Vec<_> = rows.iter().map(Row::key).collect();
        want.sort();
        have.sort();
        if want.is_empty() {
            bad.push(format!("reference {path} contains no rows"));
        } else if want != have {
            bad.push(format!(
                "row grid differs from reference {path}: {want:?} vs {have:?}"
            ));
        }
        let mut want_wire = parse_reference_wire_keys(&text);
        let mut have_wire: Vec<String> = wire_rows.iter().map(|r| r.wire.to_string()).collect();
        want_wire.sort();
        have_wire.sort();
        if want_wire.is_empty() {
            bad.push(format!("reference {path} contains no wire rows"));
        } else if want_wire != have_wire {
            bad.push(format!(
                "wire row grid differs from reference {path}: {want_wire:?} vs {have_wire:?}"
            ));
        }
        let mut want_mig = parse_reference_migration_keys(&text);
        let mut have_mig: Vec<(String, String)> = mig_rows
            .iter()
            .map(|r| (r.transport.to_string(), r.mode.to_string()))
            .collect();
        want_mig.sort();
        have_mig.sort();
        if want_mig.is_empty() {
            bad.push(format!("reference {path} contains no migration rows"));
        } else if want_mig != have_mig {
            bad.push(format!(
                "migration row grid differs from reference {path}: {want_mig:?} vs {have_mig:?}"
            ));
        }
    }
    if check.is_some() {
        if bad.is_empty() {
            println!(
                "transport bench check OK: >=2x frame reduction, frames match the closed \
                 form, ledger bytes identical, auto chunking never slower than the sweep's \
                 best, packed wire >=15% and int8 dispatch >=50% smaller, replication cuts \
                 the skewed-routing straggler index >=20% at equal routed rows, and overlap \
                 migration hides >=50% of sync migration wall time at equal ledger bytes"
            );
        } else {
            eprintln!("transport bench check FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    } else if !bad.is_empty() {
        // Even without --check, never silently emit a JSON that violates
        // the pipeline's invariants.
        eprintln!("invariant violations:");
        for b in &bad {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }

    if !quick {
        std::fs::write(
            "BENCH_transport.json",
            emit_json(steps, &rows, &wire_rows, &repl_rows, &mig_rows),
        )
        .expect("write BENCH_transport.json");
        println!("wrote BENCH_transport.json");
    }
}

//! Exchange-pipeline benchmark, emitted as `BENCH_transport.json`.
//!
//! Runs the same VirtualEngine workload (2 workers × 8 experts, so every
//! worker serves a multi-expert shard) across the full
//! {transport × coalesce × microbatch} grid and reports, per row:
//!
//! - `secs_per_step` — wall time per training step (reported, not gated:
//!   loopback timings are too noisy for a hard threshold),
//! - `frames_per_step` — wire frames the master hub ships per step, the
//!   number coalescing exists to shrink,
//! - `bytes_per_step` — the traffic ledger's logical payload bytes,
//!   which every row must agree on exactly (accounting is transport- and
//!   coalescing-independent by construction).
//!
//! Usage:
//!   bench_transport               full run, writes BENCH_transport.json
//!   bench_transport --quick       fewer steps, does not write JSON
//!   bench_transport --check FILE  verify invariants against a committed
//!                                 JSON: the row grid matches, coalescing
//!                                 cuts frames/step by ≥2x per transport,
//!                                 and bytes/step is identical everywhere
//!
//! Run with `cargo run --release -p vela-bench --bin bench_transport`.
//! The `tcp` rows spawn `vela_worker` processes, so build the whole
//! workspace first (`cargo build --release`).

use std::fmt::Write as _;
use std::time::Instant;

use vela::prelude::*;
use vela::runtime::ExchangeConfig;

const WORKERS: usize = 2;

struct Row {
    transport: &'static str,
    coalesce: bool,
    microbatch: usize,
    secs_per_step: f64,
    frames_per_step: f64,
    bytes_per_step: u64,
}

impl Row {
    fn key(&self) -> (String, bool, usize) {
        (self.transport.to_string(), self.coalesce, self.microbatch)
    }
}

fn spec() -> MoeSpec {
    MoeSpec {
        blocks: 2,
        experts: 8,
        top_k: 2,
        hidden: 1024,
        ffn: 4096,
        bits: 16,
    }
}

fn run_row(
    transport: TransportConfig,
    label: &'static str,
    exchange: ExchangeConfig,
    steps: usize,
) -> Row {
    let spec = spec();
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 1e-3,
        ..ScaleConfig::paper_default(spec)
    };
    let profile = LocalityProfile::synthetic("bench", spec.blocks, spec.experts, 1.2, 17);
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % WORKERS).collect())
            .collect(),
        WORKERS,
    );
    let mut engine = VirtualEngine::launch_with(
        transport,
        Topology::paper_testbed(),
        DeviceId(0),
        (0..WORKERS).map(DeviceId).collect(),
        placement,
        profile,
        scale,
    );
    engine.set_exchange(exchange);
    let (frames_before, _) = engine.frame_counts();
    let start = Instant::now();
    let metrics = engine.run(steps);
    let secs = start.elapsed().as_secs_f64();
    let (frames_after, _) = engine.frame_counts();
    engine.shutdown();

    let bytes: u64 = metrics.iter().map(|m| m.traffic.total_bytes).sum();
    Row {
        transport: label,
        coalesce: exchange.coalesce,
        microbatch: exchange.microbatch,
        secs_per_step: secs / steps as f64,
        frames_per_step: (frames_after - frames_before) as f64 / steps as f64,
        bytes_per_step: bytes / steps as u64,
    }
}

fn run_all(steps: usize) -> Vec<Row> {
    let transports: [(&'static str, fn() -> TransportConfig); 3] = [
        ("channel", TransportConfig::channel),
        ("tcp-threads", TransportConfig::tcp_threads),
        ("tcp", TransportConfig::tcp_processes),
    ];
    let mut rows = Vec::new();
    for (label, transport) in transports {
        for coalesce in [false, true] {
            for microbatch in [1usize, 4] {
                let exchange = ExchangeConfig {
                    coalesce,
                    microbatch,
                };
                rows.push(run_row(transport(), label, exchange, steps));
            }
        }
    }
    rows
}

fn emit_json(steps: usize, rows: &[Row]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"transport\": \"{}\", \"coalesce\": {}, \"microbatch\": {}, \"secs_per_step\": {:.9}, \"frames_per_step\": {:.1}, \"bytes_per_step\": {}}}",
            r.transport, r.coalesce, r.microbatch, r.secs_per_step, r.frames_per_step, r.bytes_per_step
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Extracts `(transport, coalesce, microbatch)` row keys from a
/// `BENCH_transport.json` file (the exact format this binary emits).
fn parse_reference_keys(text: &str) -> Vec<(String, bool, usize)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(tpos) = line.find("\"transport\": \"") else {
            continue;
        };
        let rest = &line[tpos + 14..];
        let Some(tend) = rest.find('"') else { continue };
        let transport = rest[..tend].to_string();
        let Some(cpos) = line.find("\"coalesce\": ") else {
            continue;
        };
        let coalesce = line[cpos + 12..].starts_with("true");
        let Some(mpos) = line.find("\"microbatch\": ") else {
            continue;
        };
        let micro = line[mpos + 14..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>();
        let Ok(microbatch) = micro.parse::<usize>() else {
            continue;
        };
        out.push((transport, coalesce, microbatch));
    }
    out
}

/// The invariants the exchange pipeline must uphold, checked on the
/// *measured* rows (the reference file only pins the expected grid):
///
/// 1. coalescing reduces frames/step by at least 2x per transport
///    (unpipelined rows compared, so the ratio is not diluted), and
/// 2. every row accounts exactly the same bytes/step.
fn violations(rows: &[Row]) -> Vec<String> {
    let mut bad = Vec::new();
    let find = |transport: &str, coalesce: bool| {
        rows.iter()
            .find(|r| r.transport == transport && r.coalesce == coalesce && r.microbatch == 1)
    };
    for transport in ["channel", "tcp-threads", "tcp"] {
        let (Some(per_batch), Some(coalesced)) = (find(transport, false), find(transport, true))
        else {
            bad.push(format!("{transport}: missing microbatch=1 rows"));
            continue;
        };
        if coalesced.frames_per_step * 2.0 > per_batch.frames_per_step {
            bad.push(format!(
                "{transport}: coalescing only shrinks frames/step {:.1} -> {:.1} (< 2x)",
                per_batch.frames_per_step, coalesced.frames_per_step
            ));
        }
    }
    let reference_bytes = rows.first().map_or(0, |r| r.bytes_per_step);
    for r in rows {
        if r.bytes_per_step != reference_bytes {
            bad.push(format!(
                "({}, coalesce={}, microbatch={}): {} bytes/step != {} (ledger must be exchange-shape independent)",
                r.transport, r.coalesce, r.microbatch, r.bytes_per_step, reference_bytes
            ));
        }
    }
    bad
}

fn main() {
    let mut quick = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_transport [--quick] [--check FILE]");
                std::process::exit(2);
            }
        }
    }

    let steps = if quick { 5 } else { 20 };
    let rows = run_all(steps);

    println!("steps: {steps}, workers: {WORKERS}");
    for r in &rows {
        println!(
            "{:<12} coalesce {:<5} microbatch {}  {:>10.3e}s/step  {:>7.1} frames/step  {:>10} bytes/step",
            r.transport, r.coalesce, r.microbatch, r.secs_per_step, r.frames_per_step, r.bytes_per_step
        );
    }

    let mut bad = violations(&rows);
    if let Some(path) = &check {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read reference {path}: {e}");
            std::process::exit(2);
        });
        let mut want = parse_reference_keys(&text);
        let mut have: Vec<_> = rows.iter().map(Row::key).collect();
        want.sort();
        have.sort();
        if want.is_empty() {
            bad.push(format!("reference {path} contains no rows"));
        } else if want != have {
            bad.push(format!(
                "row grid differs from reference {path}: {want:?} vs {have:?}"
            ));
        }
    }
    if check.is_some() {
        if bad.is_empty() {
            println!("transport bench check OK: >=2x frame reduction, ledger bytes identical");
        } else {
            eprintln!("transport bench check FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    } else if !bad.is_empty() {
        // Even without --check, never silently emit a JSON that violates
        // the pipeline's invariants.
        eprintln!("invariant violations:");
        for b in &bad {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }

    if !quick {
        std::fs::write("BENCH_transport.json", emit_json(steps, &rows))
            .expect("write BENCH_transport.json");
        println!("wrote BENCH_transport.json");
    }
}

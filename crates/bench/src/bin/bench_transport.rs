//! Exchange-pipeline benchmark, emitted as `BENCH_transport.json`.
//!
//! Runs the same VirtualEngine workload (2 workers × 8 experts, so every
//! worker serves a multi-expert shard) across the full
//! {transport × coalesce × microbatch} grid and reports, per row:
//!
//! - `secs_per_step` — minimum wall time per training step across the
//!   run (min, not mean, so one scheduler hiccup cannot poison a row),
//! - `frames_per_step` — wire frames the master hub ships per step; for
//!   coalesced fixed-microbatch rows this must equal the closed form
//!   `blocks · 2 · Σ_w min(mb, items_w) + control` (chunking keeps
//!   per-worker coalescing: one frame per worker per chunk),
//! - `bytes_per_step` — the traffic ledger's logical payload bytes,
//!   which every row must agree on exactly (accounting is transport-,
//!   coalescing- and chunking-independent by construction),
//! - `overlap_efficiency` — exchange wall time divided by the summed
//!   serialize + in-flight pipeline windows (from the
//!   `runtime.pipeline.*` counters, measured in a short instrumented
//!   pass after the timed one). Below 1.0 means the ring genuinely
//!   overlapped serialization with in-flight chunks.
//!
//! Usage:
//!   bench_transport               full run, writes BENCH_transport.json
//!   bench_transport --quick       fewer steps, does not write JSON
//!   bench_transport --check FILE  verify invariants against a committed
//!                                 JSON: the row grid matches, coalescing
//!                                 cuts frames/step by ≥2x per transport,
//!                                 bytes/step is identical everywhere, and
//!                                 on the channel transport the
//!                                 tuner-chosen chunking (microbatch=auto)
//!                                 is never >10% slower than microbatch=1.
//!                                 Fixed microbatch>1 trades 3x the frames
//!                                 for overlap, and this workload has
//!                                 nothing to hide (virtual payloads, echo
//!                                 workers), so fixed rows are reported
//!                                 but only auto — whose whole job is to
//!                                 fall back to one chunk when overlap
//!                                 cannot win — is time-gated
//!
//! Run with `cargo run --release -p vela-bench --bin bench_transport`.
//! The `tcp` rows spawn `vela_worker` processes, so build the whole
//! workspace first (`cargo build --release`).

use std::fmt::Write as _;
use std::time::Instant;

use vela::prelude::*;
use vela::runtime::{ExchangeConfig, Microbatch};

const WORKERS: usize = 2;
const BLOCKS: usize = 2;
const EXPERTS: usize = 8;
/// Steps of the short instrumented pass that feeds `overlap_efficiency`.
const COUNTER_STEPS: usize = 4;

struct Row {
    transport: &'static str,
    coalesce: bool,
    microbatch: Microbatch,
    secs_per_step: f64,
    frames_per_step: f64,
    bytes_per_step: u64,
    overlap_efficiency: f64,
}

impl Row {
    fn key(&self) -> (String, bool, String) {
        (
            self.transport.to_string(),
            self.coalesce,
            self.microbatch.label(),
        )
    }
}

fn spec() -> MoeSpec {
    MoeSpec {
        blocks: BLOCKS,
        experts: EXPERTS,
        top_k: 2,
        hidden: 1024,
        ffn: 4096,
        bits: 16,
    }
}

fn launch(transport: TransportConfig, exchange: ExchangeConfig) -> VirtualEngine {
    let spec = spec();
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 1e-3,
        ..ScaleConfig::paper_default(spec)
    };
    let profile = LocalityProfile::synthetic("bench", spec.blocks, spec.experts, 1.2, 17);
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % WORKERS).collect())
            .collect(),
        WORKERS,
    );
    let mut engine = VirtualEngine::launch_with(
        transport,
        Topology::paper_testbed(),
        DeviceId(0),
        (0..WORKERS).map(DeviceId).collect(),
        placement,
        profile,
        scale,
    );
    engine.set_exchange(exchange);
    engine
}

/// Cumulative value of a `runtime.pipeline.*` counter.
fn pipeline_counter(snapshot: &[(String, u64)], name: &str) -> u64 {
    snapshot
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |&(_, v)| v)
}

fn run_row(
    transport: TransportConfig,
    label: &'static str,
    exchange: ExchangeConfig,
    steps: usize,
) -> Row {
    let mut engine = launch(transport, exchange);
    let (frames_before, _) = engine.frame_counts();
    let mut best = f64::INFINITY;
    let mut bytes = 0u64;
    for _ in 0..steps {
        let t0 = Instant::now();
        let m = engine.step();
        best = best.min(t0.elapsed().as_secs_f64());
        bytes += m.traffic.total_bytes;
    }
    let (frames_after, _) = engine.frame_counts();

    // A short instrumented pass on the same engine: the pipeline counters
    // tell us how much of the exchange wall time was covered by
    // serialize + in-flight windows. Kept out of the timed loop so the
    // timings stay probe-free.
    vela::obs::set_mode(vela::obs::TraceMode::Counters);
    let before = vela::obs::counter_snapshot();
    for _ in 0..COUNTER_STEPS {
        engine.step();
    }
    let after = vela::obs::counter_snapshot();
    vela::obs::set_mode(vela::obs::TraceMode::Off);
    engine.shutdown();

    let delta = |name: &str| pipeline_counter(&after, name) - pipeline_counter(&before, name);
    let exchange_us = delta("runtime.pipeline.exchange_us");
    let covered_us = delta("runtime.pipeline.serialize_us") + delta("runtime.pipeline.inflight_us");
    let overlap_efficiency = if covered_us > 0 {
        exchange_us as f64 / covered_us as f64
    } else {
        0.0
    };

    Row {
        transport: label,
        coalesce: exchange.coalesce,
        microbatch: exchange.microbatch,
        secs_per_step: best,
        frames_per_step: (frames_after - frames_before) as f64 / steps as f64,
        bytes_per_step: bytes / steps as u64,
        overlap_efficiency,
    }
}

fn run_all(steps: usize) -> Vec<Row> {
    let transports: [(&'static str, fn() -> TransportConfig); 3] = [
        ("channel", TransportConfig::channel),
        ("tcp-threads", TransportConfig::tcp_threads),
        ("tcp", TransportConfig::tcp_processes),
    ];
    let shapes: [(bool, Microbatch); 6] = [
        (false, Microbatch::Fixed(1)),
        (true, Microbatch::Fixed(1)),
        (true, Microbatch::Fixed(2)),
        (true, Microbatch::Fixed(4)),
        (true, Microbatch::Fixed(8)),
        (true, Microbatch::Auto),
    ];
    let mut rows = Vec::new();
    for (label, transport) in transports {
        for (coalesce, microbatch) in shapes {
            let exchange = ExchangeConfig {
                coalesce,
                microbatch,
                ..ExchangeConfig::default()
            };
            rows.push(run_row(transport(), label, exchange, steps));
        }
    }
    rows
}

fn emit_json(steps: usize, rows: &[Row]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(
        json,
        "  \"pipeline_depth\": {},",
        ExchangeConfig::default().depth
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"transport\": \"{}\", \"coalesce\": {}, \"microbatch\": \"{}\", \"secs_per_step\": {:.9}, \"frames_per_step\": {:.1}, \"bytes_per_step\": {}, \"overlap_efficiency\": {:.3}}}",
            r.transport, r.coalesce, r.microbatch.label(), r.secs_per_step, r.frames_per_step, r.bytes_per_step, r.overlap_efficiency
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Extracts `(transport, coalesce, microbatch)` row keys from a
/// `BENCH_transport.json` file (the exact format this binary emits).
fn parse_reference_keys(text: &str) -> Vec<(String, bool, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(tpos) = line.find("\"transport\": \"") else {
            continue;
        };
        let rest = &line[tpos + 14..];
        let Some(tend) = rest.find('"') else { continue };
        let transport = rest[..tend].to_string();
        let Some(cpos) = line.find("\"coalesce\": ") else {
            continue;
        };
        let coalesce = line[cpos + 12..].starts_with("true");
        let Some(mpos) = line.find("\"microbatch\": \"") else {
            continue;
        };
        let mrest = &line[mpos + 15..];
        let Some(mend) = mrest.find('"') else {
            continue;
        };
        out.push((transport, coalesce, mrest[..mend].to_string()));
    }
    out
}

/// Wire frames one step must ship: `blocks · 2 passes` block-exchanges of
/// one frame per worker per chunk, plus the `StepBegin`/`StepEnd` control
/// broadcasts. Each worker serves `EXPERTS / WORKERS` experts here, so a
/// fixed microbatch of `mb` makes `min(mb, items_w)` chunks per worker.
/// `None` for shapes whose frame count is not pinned (auto picks its own
/// chunk count).
fn expected_frames(coalesce: bool, microbatch: Microbatch) -> Option<f64> {
    let control = 2 * WORKERS;
    let items_per_worker = EXPERTS / WORKERS;
    match (coalesce, microbatch.fixed()) {
        // Per-batch framing ignores chunking: one frame per expert batch.
        (false, _) => Some((BLOCKS * 2 * EXPERTS + control) as f64),
        (true, Some(mb)) => {
            Some((BLOCKS * 2 * WORKERS * mb.min(items_per_worker) + control) as f64)
        }
        (true, None) => None,
    }
}

/// The structural invariants the exchange pipeline must uphold, checked
/// on the *measured* rows (the reference file only pins the expected
/// grid):
///
/// 1. coalescing reduces frames/step by at least 2x per transport
///    (microbatch=1 rows compared, so the ratio is not diluted),
/// 2. every row ships exactly the frames the closed form predicts — a
///    chunked block-pass still coalesces per worker (the regression this
///    formula guards against degenerated chunked rows to per-item
///    frames), and
/// 3. every row accounts exactly the same bytes/step.
fn violations(rows: &[Row]) -> Vec<String> {
    let mut bad = Vec::new();
    let find = |transport: &str, coalesce: bool| {
        rows.iter().find(|r| {
            r.transport == transport
                && r.coalesce == coalesce
                && r.microbatch == Microbatch::Fixed(1)
        })
    };
    for transport in ["channel", "tcp-threads", "tcp"] {
        let (Some(per_batch), Some(coalesced)) = (find(transport, false), find(transport, true))
        else {
            bad.push(format!("{transport}: missing microbatch=1 rows"));
            continue;
        };
        if coalesced.frames_per_step * 2.0 > per_batch.frames_per_step {
            bad.push(format!(
                "{transport}: coalescing only shrinks frames/step {:.1} -> {:.1} (< 2x)",
                per_batch.frames_per_step, coalesced.frames_per_step
            ));
        }
    }
    for r in rows {
        if let Some(expected) = expected_frames(r.coalesce, r.microbatch) {
            if (r.frames_per_step - expected).abs() > 1e-9 {
                bad.push(format!(
                    "({}, coalesce={}, microbatch={}): {:.1} frames/step, closed form says {expected} \
                     (chunking must keep per-worker coalescing)",
                    r.transport, r.coalesce, r.microbatch, r.frames_per_step
                ));
            }
        }
    }
    let reference_bytes = rows.first().map_or(0, |r| r.bytes_per_step);
    for r in rows {
        if r.bytes_per_step != reference_bytes {
            bad.push(format!(
                "({}, coalesce={}, microbatch={}): {} bytes/step != {} (ledger must be exchange-shape independent)",
                r.transport, r.coalesce, r.microbatch, r.bytes_per_step, reference_bytes
            ));
        }
    }
    bad
}

/// The `--check` timing gate: on the channel transport (the only backend
/// quiet enough to gate), enabling chunking must be at worst ~free when
/// the tuner picks the chunk count — the coalesced `microbatch=auto` row
/// may not run >10% slower per step than `microbatch=1`.
///
/// Fixed `microbatch>1` rows are deliberately not gated on this workload:
/// virtual payloads serialize in microseconds and echo workers do no
/// compute, so there is nothing for extra chunks to overlap and their 3x
/// frame count is pure cost. `auto` exists precisely to detect that and
/// stay at one chunk — which is what this gate pins.
fn timing_violations(rows: &[Row]) -> Vec<String> {
    let mut bad = Vec::new();
    let channel_row = |microbatch: Microbatch| {
        rows.iter()
            .find(|r| r.transport == "channel" && r.coalesce && r.microbatch == microbatch)
    };
    let (Some(base), Some(auto)) = (
        channel_row(Microbatch::Fixed(1)),
        channel_row(Microbatch::Auto),
    ) else {
        return vec!["channel: missing coalesced microbatch=1/auto rows".into()];
    };
    if auto.secs_per_step > base.secs_per_step * 1.10 {
        bad.push(format!(
            "channel microbatch=auto: {:.1}us/step is >10% slower than microbatch=1 \
             ({:.1}us/step) — the tuner must keep chunking ~free when overlap cannot win",
            auto.secs_per_step * 1e6,
            base.secs_per_step * 1e6,
        ));
    }
    bad
}

fn main() {
    let mut quick = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_transport [--quick] [--check FILE]");
                std::process::exit(2);
            }
        }
    }

    let steps = if quick { 5 } else { 20 };
    let rows = run_all(steps);

    println!("steps: {steps}, workers: {WORKERS}");
    for r in &rows {
        println!(
            "{:<12} coalesce {:<5} microbatch {:<4}  {:>10.3e}s/step  {:>7.1} frames/step  {:>10} bytes/step  overlap {:>5.3}",
            r.transport,
            r.coalesce,
            r.microbatch.label(),
            r.secs_per_step,
            r.frames_per_step,
            r.bytes_per_step,
            r.overlap_efficiency
        );
    }

    let mut bad = violations(&rows);
    if let Some(path) = &check {
        bad.extend(timing_violations(&rows));
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read reference {path}: {e}");
            std::process::exit(2);
        });
        let mut want = parse_reference_keys(&text);
        let mut have: Vec<_> = rows.iter().map(Row::key).collect();
        want.sort();
        have.sort();
        if want.is_empty() {
            bad.push(format!("reference {path} contains no rows"));
        } else if want != have {
            bad.push(format!(
                "row grid differs from reference {path}: {want:?} vs {have:?}"
            ));
        }
    }
    if check.is_some() {
        if bad.is_empty() {
            println!(
                "transport bench check OK: >=2x frame reduction, frames match the closed \
                 form, ledger bytes identical, auto chunking within 10% on channel"
            );
        } else {
            eprintln!("transport bench check FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    } else if !bad.is_empty() {
        // Even without --check, never silently emit a JSON that violates
        // the pipeline's invariants.
        eprintln!("invariant violations:");
        for b in &bad {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }

    if !quick {
        std::fs::write("BENCH_transport.json", emit_json(steps, &rows))
            .expect("write BENCH_transport.json");
        println!("wrote BENCH_transport.json");
    }
}

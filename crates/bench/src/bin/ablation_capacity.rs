//! Ablation: placement quality as per-worker capacity tightens.
//!
//! With loose capacities the LP can pile hot experts onto the master's
//! node; as `C_n` approaches the bare minimum `⌈L·E/N⌉`, the room for
//! locality-aware packing vanishes. This sweep quantifies that trade-off
//! (constraint (11) of the paper).
//!
//! Run: `cargo run --release -p vela-bench --bin ablation_capacity`

use vela::prelude::*;

fn main() {
    println!("== Ablation: benefit vs per-worker capacity ==");
    let spec = MoeSpec::mixtral_8x7b();
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    let profile = LocalityProfile::synthetic("c", spec.blocks, spec.experts, 1.2, 13);
    let minimum = spec.total_experts().div_ceil(workers.len());

    println!(
        "{:>10} | {:>12} | {:>12} | {:>9} | {:>16}",
        "capacity", "seq E[T] (s)", "vela E[T] (s)", "gain", "experts on node0"
    );
    for slack in [0usize, 2, 5, 10, 20, 40] {
        let cap = minimum + slack;
        let problem = PlacementProblem::new(
            topology.clone(),
            DeviceId(0),
            workers.clone(),
            profile.to_matrix(),
            8192.0,
            spec.token_bytes(),
            vec![cap; 6],
        );
        let seq = problem.expected_comm_time(&Strategy::Sequential.place(&problem));
        let placement = Strategy::Vela.place(&problem);
        let vela = problem.expected_comm_time(&placement);
        let node0 = placement.load()[0] + placement.load()[1];
        println!(
            "{cap:>10} | {seq:>12.4} | {vela:>12.4} | {:>8.1}% | {node0:>9}/{}",
            RunSummary::reduction_vs(vela, seq) * 100.0,
            spec.total_experts()
        );
    }
    println!("\n(tighter capacity -> fewer hot experts fit near the master -> smaller advantage)");
}

//! Fig. 7 — expert access frequency heatmaps of Mixtral on both datasets
//! (§V-B, "Performance analysis").
//!
//! Prints the 32-block × 8-expert access heatmap for the WikiText and
//! Alpaca analogues: WikiText should be *concentrated* (few hot cells per
//! column), Alpaca more *uniform* (many lukewarm cells) — the contrast the
//! paper uses to explain why VELA's benefit is larger on WikiText.
//!
//! Run: `cargo run --release -p vela-bench --bin fig7`

use vela_bench::{heat_cell, measured_profile, pretrain_micro, EvalDataset, EvalModel};

fn main() {
    let model = EvalModel::Mixtral;
    let spec = model.spec();
    println!("== Fig. 7: expert access frequency of Mixtral on different datasets ==");
    vela_obs::info!("pre-training {} micro proxy", model.name());
    let (mut m, mut e) = pretrain_micro(model);

    for dataset in EvalDataset::ALL {
        let profile = measured_profile(&mut m, &mut e, dataset, &spec, model.seed());
        println!(
            "\n-- ({}) {}: rows = experts 1..{}, cols = layers 1..{} --",
            match dataset {
                EvalDataset::WikiText => "a",
                EvalDataset::Alpaca => "b",
            },
            dataset.name(),
            spec.experts,
            spec.blocks
        );
        for expert in 0..spec.experts {
            let row: String = (0..spec.blocks)
                .map(|l| heat_cell(profile.prob(l, expert)))
                .collect();
            println!("  expert {} |{}|", expert + 1, row);
        }
        let hot_cells: usize = (0..spec.blocks)
            .map(|l| {
                (0..spec.experts)
                    .filter(|&e| profile.prob(l, e) > 1.5 / spec.experts as f64)
                    .count()
            })
            .sum();
        println!(
            "  mean concentration: {:.3}   hot cells (>1.5x uniform): {hot_cells}/{}",
            profile.mean_concentration(),
            spec.blocks * spec.experts
        );
    }
    println!(
        "\n(paper: WikiText access is concentrated on popular experts; Alpaca is more uniformly \
         distributed, which shrinks VELA's advantage)"
    );
}

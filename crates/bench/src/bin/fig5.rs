//! Fig. 5 — cross-node traffic per node per fine-tuning step (§V-B).
//!
//! For each of the four settings (Mixtral / GritLM × WikiText / Alpaca) and
//! each strategy (EP, Sequential, Random, VELA), runs 500 scale-virtual
//! fine-tuning steps on the paper's 3-node × 2-GPU testbed and prints the
//! per-step average external traffic series plus the headline reductions.
//!
//! Run: `cargo run --release -p vela-bench --bin fig5 [-- --steps N]`

use vela::prelude::*;
use vela_bench::{eval_strategies, mb, measured_profile, pretrain_micro, EvalDataset, EvalModel};

fn main() {
    let steps: usize = std::env::args()
        .skip_while(|a| a != "--steps")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    println!("== Fig. 5: average cross-node traffic per node per step ({steps} steps) ==");

    for model in EvalModel::ALL {
        let spec = model.spec();
        let scale = ScaleConfig::paper_default(spec);
        vela_obs::info!(
            "pre-training {} micro proxy and measuring locality",
            model.name()
        );
        let (mut m, mut e) = pretrain_micro(model);
        for dataset in EvalDataset::ALL {
            let profile = measured_profile(&mut m, &mut e, dataset, &spec, model.seed());
            println!(
                "\n-- {} with {} (profile concentration {:.3}) --",
                model.name(),
                dataset.name(),
                profile.mean_concentration()
            );
            let mut ep_avg = None;
            let mut rows: Vec<(String, Vec<f64>, f64)> = Vec::new();
            for strategy in eval_strategies() {
                let metrics = vela_bench::run_strategy(strategy, &profile, &spec, &scale, steps);
                let series: Vec<f64> = metrics
                    .iter()
                    .map(|s| s.traffic.external_avg_per_node())
                    .collect();
                let summary = RunSummary::from_steps(&metrics);
                if strategy.label() == "EP" {
                    ep_avg = Some(summary.avg_external_per_node);
                }
                rows.push((
                    strategy.label().to_string(),
                    series,
                    summary.avg_external_per_node,
                ));
            }

            println!(
                "{:>10} | traffic per node (MB) at steps 1,100,...,{steps} | avg | vs EP",
                "strategy"
            );
            let ep = ep_avg.expect("EP runs first");
            for (label, series, avg) in &rows {
                let samples: Vec<String> = series
                    .iter()
                    .step_by((steps / 5).max(1))
                    .map(|&b| mb(b))
                    .collect();
                let reduction = RunSummary::reduction_vs(*avg, ep) * 100.0;
                println!(
                    "{label:>10} | {} | {} MB | {reduction:+.1}%",
                    samples.join("  "),
                    mb(*avg),
                );
            }
            println!(
                "(paper: baselines ≈ equal with EP slightly higher; VELA lowest, -17..-25% vs EP)"
            );
        }
    }
}

//! Ablation: where does locality-aware placement stop mattering as the
//! inter-node link approaches intra-node speed?
//!
//! Sweeps the inter-node bandwidth from Ethernet (the paper's 1.17 GB/s)
//! up to NVLink-class and reports VELA's expected-time advantage over
//! sequential placement at each point.
//!
//! Run: `cargo run --release -p vela-bench --bin ablation_bandwidth`

use vela::prelude::*;

fn main() {
    println!("== Ablation: benefit vs inter-node bandwidth ==");
    let spec = MoeSpec::mixtral_8x7b();
    let profile = LocalityProfile::synthetic("p", spec.blocks, spec.experts, 1.2, 5);
    println!(
        "{:>14} | {:>12} | {:>13} | {:>9} | {:>12}",
        "inter (GB/s)", "seq (s/step)", "vela (s/step)", "gain", "saved (s)"
    );
    for inter in [0.3, 1.17, 3.0, 6.0, 12.0, 18.3] {
        let topology = Topology::builder(3, 2)
            .inter_bandwidth(Bandwidth::from_gbytes_per_sec(inter))
            .build();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let caps =
            vela::runtime::virtual_engine::capacity_from_memory(&topology, &workers, &spec, 0.5);
        let problem = PlacementProblem::new(
            topology,
            DeviceId(0),
            workers,
            profile.to_matrix(),
            8192.0,
            spec.token_bytes(),
            caps,
        );
        let seq = problem.expected_comm_time(&Strategy::Sequential.place(&problem));
        let vela = problem.expected_comm_time(&Strategy::Vela.place(&problem));
        println!(
            "{inter:>14.2} | {seq:>12.4} | {vela:>13.4} | {:>8.1}% | {:>12.4}",
            RunSummary::reduction_vs(vela, seq) * 100.0,
            seq - vela
        );
    }
    println!(
        "\n(the relative gain persists — the master-colocated worker is free at any link \
         speed — but the absolute seconds saved per step collapse as the network flattens, \
         which is what decides whether placement is worth optimizing)"
    );
}

//! Ablation: LP + rounding vs greedy vs exhaustive-exact placement.
//!
//! On small instances (where the exact optimum is computable), measures the
//! optimality gap of VELA's LP + rounding pipeline and the greedy
//! heuristic; on paper-size instances, compares LP vs greedy quality and
//! solve time.
//!
//! Run: `cargo run --release -p vela-bench --bin ablation_solver`

use std::time::Instant;

use vela::placement::exact::{branch_and_bound, optimal_placement};
use vela::prelude::*;

fn main() {
    println!("== Ablation: placement solver quality ==");

    // --- small instances with exact reference ------------------------------
    println!("\n-- tiny instances (2 blocks x 4 experts, 4 workers on 2 nodes) --");
    println!(
        "{:>5} | {:>10} | {:>10} | {:>10} | {:>10} | {:>9} | {:>9}",
        "seed", "exact", "vela", "greedy", "seq", "vela gap", "greedy gap"
    );
    let topology = Topology::builder(2, 2).build();
    for seed in 0..8u64 {
        let profile = LocalityProfile::synthetic("t", 2, 4, 1.3, seed);
        let problem = PlacementProblem::new(
            topology.clone(),
            DeviceId(0),
            (0..4).map(DeviceId).collect(),
            profile.to_matrix(),
            1000.0,
            8192,
            PlacementProblem::even_capacities(2, 4, 4, 1),
        );
        let (_, exact) = optimal_placement(&problem);
        let vela = problem.expected_comm_time(&Strategy::Vela.place(&problem));
        let greedy = problem.expected_comm_time(&Strategy::Greedy.place(&problem));
        let seq = problem.expected_comm_time(&Strategy::Sequential.place(&problem));
        println!(
            "{seed:>5} | {exact:>10.6} | {vela:>10.6} | {greedy:>10.6} | {seq:>10.6} | {:>8.1}% | {:>8.1}%",
            gap(vela, exact),
            gap(greedy, exact)
        );
    }

    // --- mid-size instances: branch-and-bound reference ---------------------
    println!("\n-- mid-size instances (4 blocks x 6 experts, 6 workers): LP-bounded B&B --");
    let topology6 = Topology::paper_testbed();
    for seed in [11u64, 12, 13] {
        let profile = LocalityProfile::synthetic("m", 4, 6, 1.2, seed);
        let problem = PlacementProblem::new(
            topology6.clone(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            profile.to_matrix(),
            1000.0,
            8192,
            PlacementProblem::even_capacities(4, 6, 6, 1),
        );
        let t0 = Instant::now();
        let bb = branch_and_bound(&problem, 2_000);
        let vela = problem.expected_comm_time(&Strategy::Vela.place(&problem));
        println!(
            "seed {seed}: B&B {:.6} ({} nodes, optimal proven: {}, {:.2?}), vela {:.6} (gap {:+.1}%)",
            bb.cost,
            bb.nodes,
            bb.proven_optimal,
            t0.elapsed(),
            vela,
            gap(vela, bb.cost)
        );
    }

    // --- paper-size instance ------------------------------------------------
    println!("\n-- paper-size instance (32 blocks x 8 experts, 6 workers) --");
    let spec = MoeSpec::mixtral_8x7b();
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    for zipf in [0.5, 1.0, 1.5] {
        let profile = LocalityProfile::synthetic("p", spec.blocks, spec.experts, zipf, 9);
        let caps =
            vela::runtime::virtual_engine::capacity_from_memory(&topology, &workers, &spec, 0.5);
        let problem = PlacementProblem::new(
            topology.clone(),
            DeviceId(0),
            workers.clone(),
            profile.to_matrix(),
            8192.0,
            spec.token_bytes(),
            caps,
        );
        let t0 = Instant::now();
        let vela_placement = Strategy::Vela.place(&problem);
        let lp_time = t0.elapsed();
        let t1 = Instant::now();
        let greedy_placement = Strategy::Greedy.place(&problem);
        let greedy_time = t1.elapsed();
        let vela = problem.expected_comm_time(&vela_placement);
        let greedy = problem.expected_comm_time(&greedy_placement);
        let seq = problem.expected_comm_time(&Strategy::Sequential.place(&problem));
        println!(
            "zipf {zipf:.1}: vela {vela:.4}s/step ({lp_time:.2?}), greedy {greedy:.4}s/step \
             ({greedy_time:.2?}), sequential {seq:.4}s/step; vela vs greedy {:+.1}%",
            gap(vela, greedy)
        );
    }
    println!("\n(LP solves the global capacity trade-off; greedy is per-block and myopic)");
}

fn gap(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (value - reference) / reference * 100.0
    }
}

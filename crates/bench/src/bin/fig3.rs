//! Fig. 3 — the expert-locality measurement study (§III).
//!
//! Reproduces all three panels on the TinyMistral analogue (12 MoE blocks
//! × 6 experts, top-2) fine-tuned on the Tiny-Shakespeare analogue:
//!
//! * **(a)** per-block expert access frequency after pre-training, before
//!   any fine-tuning;
//! * **(b)** the CDF of the summed softmax scores of the selected experts
//!   in the first MoE block;
//! * **(c)** per-expert access frequency of the first block across 300
//!   fine-tuning steps.
//!
//! Run: `cargo run --release -p vela-bench --bin fig3`

use vela::prelude::*;
use vela_bench::heat_cell;

fn main() {
    let tok = CharTokenizer::new();
    let cfg = ModelConfig::tiny_mistral(tok.vocab_size());
    println!("== Fig. 3: expert locality in fine-tuning ==");
    println!(
        "model: TinyMistral analogue ({} blocks x {} experts, top-{})",
        cfg.blocks, cfg.experts, cfg.top_k
    );

    // Pre-train on the mixed corpus with the balancing aux loss.
    vela_obs::info!("pre-training micro model (300 steps)");
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 300,
            batch_size: 8,
            corpus_chars: 150_000,
            seed: 42,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    println!(
        "pre-train loss: {:.3} -> {:.3}",
        pre.losses[0],
        pre.losses.last().unwrap()
    );

    // Freeze + LoRA, as fine-tuning would see the model.
    vela::model::finetune::prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(7),
    );

    let dataset = TokenDataset::from_text(&tok, &Corpus::TinyShakespeare.generate(80_000, 5));

    // ---- (a) access frequency per block, inference pass ------------------
    let mut tracker = AccessTracker::new(cfg.blocks, cfg.experts);
    let mut score_sums: Vec<f32> = Vec::new();
    for batch in dataset.sequential_batches(8, cfg.seq_len).iter().take(24) {
        model.forward(&batch.inputs, batch.batch_size, batch.seq_len, &mut experts);
        let snap = model.routing_snapshot();
        tracker.record(&snap);
        score_sums.extend(snap[0].selected_score_sums());
    }
    println!("\n-- Fig. 3(a): expert access frequency per block (pre-fine-tuning) --");
    println!("{:>7} | freq per expert (heat)", "block");
    for l in 0..cfg.blocks {
        let f = tracker.frequencies(l);
        let heat: String = f.iter().map(|&p| heat_cell(p)).collect();
        let nums: Vec<String> = f.iter().map(|p| format!("{p:.3}")).collect();
        println!("{:>7} | [{}]  {}", l + 1, heat, nums.join(" "));
    }
    // Persist the histogram for downstream consumers (the replication
    // cost model sizes replica degrees from exactly these shares).
    let access_path = "results/expert_access.json";
    match std::fs::write(access_path, tracker.to_json()) {
        Ok(()) => println!("wrote per-(block,expert) access histogram to {access_path}"),
        Err(e) => eprintln!("could not write {access_path}: {e}"),
    }

    let peak: f64 = (0..cfg.blocks).map(|l| tracker.peak_share(l)).sum::<f64>() / cfg.blocks as f64;
    println!(
        "mean peak expert share: {:.3} (uniform would be {:.3}) -> locality {}",
        peak,
        1.0 / cfg.experts as f64,
        if peak > 1.3 / cfg.experts as f64 {
            "PRESENT"
        } else {
            "weak"
        }
    );

    // ---- (b) CDF of selected softmax score sums (block 1) ----------------
    let cdf = Cdf::from_samples(score_sums);
    println!("\n-- Fig. 3(b): CDF of selected-expert softmax score sums (block 1) --");
    for (value, frac) in cdf.curve(11) {
        println!("  score <= {value:.3}: {:5.1}%", frac * 100.0);
    }
    println!(
        "  fraction of score sums > 0.5: {:5.1}%   > 0.7: {:5.1}%",
        cdf.fraction_above(0.5) * 100.0,
        cdf.fraction_above(0.7) * 100.0
    );

    // ---- (c) frequency during fine-tuning ---------------------------------
    println!("\n-- Fig. 3(c): block-1 expert access frequency over 300 fine-tuning steps --");
    let steps = 300;
    let mut series: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut opt_m = AdamW::new(AdamWConfig::default());
    let mut opt_e = AdamW::new(AdamWConfig::default());
    let mut rng = DetRng::new(99);
    use vela::nn::param::Module;
    for step in 0..steps {
        let batch = dataset.sample_batch(8, cfg.seq_len, &mut rng);
        experts.zero_grad();
        model.train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
            &mut experts,
        );
        opt_m.step(&mut model);
        opt_e.step(&mut experts);
        let snap = model.routing_snapshot();
        series.push(snap[0].frequencies().iter().map(|&f| f as f64).collect());
        if step % 50 == 0 || step == steps - 1 {
            let f = &series[series.len() - 1];
            let nums: Vec<String> = f.iter().map(|p| format!("{p:.3}")).collect();
            println!("  step {:>3}: {}", step, nums.join(" "));
        }
    }
    let report = StabilityReport::new(series);
    println!(
        "\nstability: max consecutive TV = {:.4}, end-to-end TV = {:.4}, popularity rank preserved: {}",
        report.max_consecutive_tv(),
        report.end_to_end_tv(),
        report.popularity_rank_preserved()
    );
    println!("(paper: frequencies remain very stable; popular experts drift slightly up)");
}

//! Ablation: how robust is a one-shot placement to routing drift?
//!
//! VELA measures the probability matrix `P` once before fine-tuning
//! (§IV-B) and argues Theorem 1 makes that safe. This ablation injects
//! much stronger drift than fine-tuning produces and watches the placement
//! decay: the one-shot placement is re-evaluated against a profile that
//! keeps sharpening *around a moving permutation* (worst case: popularity
//! migrates to experts the placement put on slow links).
//!
//! Run: `cargo run --release -p vela-bench --bin ablation_drift`

use vela::prelude::*;
use vela_bench::scale_problem;

fn main() {
    println!("== Ablation: stale-profile robustness under routing drift ==");
    let spec = MoeSpec::mixtral_8x7b();
    let scale = ScaleConfig::paper_default(spec);
    let topology = Topology::paper_testbed();
    let initial = LocalityProfile::synthetic("d", spec.blocks, spec.experts, 1.2, 33);

    // Place once, against the *initial* profile (the paper's protocol).
    let problem = scale_problem(&initial, &spec, &topology, &scale);
    let placement = Strategy::Vela.place(&problem);
    let seq = Strategy::Sequential.place(&problem);

    println!(
        "{:>18} | {:>12} | {:>12} | {:>9}",
        "drift", "seq E[T] (s)", "vela E[T] (s)", "gain"
    );
    // Benign drift: the measured distribution sharpens in place (what
    // Theorem 1 predicts and Fig. 3(c)/5(a) show).
    let mut benign = initial.clone();
    for (label, sharpen) in [("none", 0.0), ("sharpen x0.1", 0.1), ("sharpen x0.3", 0.3)] {
        benign.sharpen(sharpen);
        let p = scale_problem(&benign, &spec, &topology, &scale);
        let tv = p.expected_comm_time(&placement);
        let ts = p.expected_comm_time(&seq);
        println!(
            "{label:>18} | {ts:>12.4} | {tv:>12.4} | {:>8.1}%",
            RunSummary::reduction_vs(tv, ts) * 100.0
        );
    }
    // Adversarial drift: popularity migrates to *different experts* —
    // exactly what Theorem 1 says does not happen in fine-tuning. The
    // placement decays toward baseline.
    for seed in [1u64, 2, 3] {
        let migrated = initial.upscale(spec.blocks, spec.experts, seed ^ 0xDEAD);
        let p = scale_problem(&migrated, &spec, &topology, &scale);
        let tv = p.expected_comm_time(&placement);
        let ts = p.expected_comm_time(&seq);
        println!(
            "{:>18} | {ts:>12.4} | {tv:>12.4} | {:>8.1}%",
            format!("migrated (s{seed})"),
            RunSummary::reduction_vs(tv, ts) * 100.0
        );
    }
    println!(
        "\n(benign sharpening preserves — even grows — the advantage; only a popularity \
         *migration*, which Theorem 1 rules out for fine-tuning, erases it)"
    );
}

//! Micro-bench: routing-trace sampling and one virtual evaluation step.
//!
//! Run with `cargo bench -p vela-bench --bench routing`.

use vela::prelude::*;
use vela::runtime::routing::sample_expert_counts;
use vela_bench::microbench::bench;

fn bench_sampling() {
    let spec = MoeSpec::mixtral_8x7b();
    let profile = LocalityProfile::synthetic("r", spec.blocks, spec.experts, 1.2, 4);
    let mut rng = DetRng::new(1);
    bench("sample_block_4096tok_top2", || {
        sample_expert_counts(&profile, 0, 4096, 2, &mut rng)
    });
}

fn bench_virtual_step() {
    let spec = MoeSpec::mixtral_8x7b();
    let scale = ScaleConfig {
        batch: 8,
        seq: 128, // smaller workload so one iteration stays sub-second
        ..ScaleConfig::paper_default(spec)
    };
    let profile = LocalityProfile::synthetic("r", spec.blocks, spec.experts, 1.2, 4);
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    );
    let mut engine = VirtualEngine::launch(
        topology.clone(),
        DeviceId(0),
        workers.clone(),
        placement,
        profile.clone(),
        scale.clone(),
    );
    bench("virtual_engine_step_32blocks", || engine.step());
    let mut ep = EpEngine::new(topology, workers, profile, scale);
    bench("ep_engine_step_32blocks", || ep.step());
    engine.shutdown();
}

fn main() {
    bench_sampling();
    bench_virtual_step();
}

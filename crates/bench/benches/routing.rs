//! Criterion bench: routing-trace sampling and one virtual evaluation step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vela::prelude::*;
use vela::runtime::routing::sample_expert_counts;

fn bench_sampling(c: &mut Criterion) {
    let spec = MoeSpec::mixtral_8x7b();
    let profile = LocalityProfile::synthetic("r", spec.blocks, spec.experts, 1.2, 4);
    c.bench_function("sample_block_4096tok_top2", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            black_box(sample_expert_counts(
                black_box(&profile),
                0,
                4096,
                2,
                &mut rng,
            ))
        });
    });
}

fn bench_virtual_step(c: &mut Criterion) {
    let spec = MoeSpec::mixtral_8x7b();
    let scale = ScaleConfig {
        batch: 8,
        seq: 128, // smaller workload so one iteration stays sub-second
        ..ScaleConfig::paper_default(spec)
    };
    let profile = LocalityProfile::synthetic("r", spec.blocks, spec.experts, 1.2, 4);
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    );
    let mut engine = VirtualEngine::launch(
        topology.clone(),
        DeviceId(0),
        workers.clone(),
        placement,
        profile.clone(),
        scale.clone(),
    );
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.bench_function("virtual_engine_step_32blocks", |b| {
        b.iter(|| black_box(engine.step()));
    });
    let mut ep = EpEngine::new(topology, workers, profile, scale);
    group.bench_function("ep_engine_step_32blocks", |b| {
        b.iter(|| black_box(ep.step()));
    });
    group.finish();
    engine.shutdown();
}

criterion_group!(benches, bench_sampling, bench_virtual_step);
criterion_main!(benches);

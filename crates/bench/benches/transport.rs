//! Criterion bench: message serialization and the master↔worker transport.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use vela::cluster::TrafficLedger;
use vela::prelude::*;
use vela::runtime::message::{Message, Payload};
use vela::runtime::transport::star;

fn bench_encode_decode(c: &mut Criterion) {
    let mut rng = DetRng::new(1);
    let t = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    let msg = Message::TokenBatch {
        block: 5,
        expert: 3,
        payload: Payload::from_tensor(&t),
    };
    let bytes = msg.encode();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_real_96x32", |b| {
        b.iter(|| black_box(black_box(&msg).encode()));
    });
    group.bench_function("decode_real_96x32", |b| {
        b.iter(|| black_box(Message::decode(black_box(bytes.clone()))));
    });
    let virt = Message::TokenBatch {
        block: 5,
        expert: 3,
        payload: Payload::Virtual {
            rows: 4096,
            bytes_per_token: 8192,
        },
    };
    group.bench_function("encode_virtual", |b| {
        b.iter(|| black_box(black_box(&virt).encode()));
    });
    group.finish();
}

fn bench_star_roundtrip(c: &mut Criterion) {
    let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
    let (hub, mut ports) = star(ledger, DeviceId(0), &[DeviceId(2)]);
    let port = ports.remove(0);
    // Echo thread.
    let echo = std::thread::spawn(move || loop {
        match port.recv() {
            Message::Shutdown => break,
            msg => port.send(&msg),
        }
    });
    let mut rng = DetRng::new(2);
    let t = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    let msg = Message::TokenBatch {
        block: 0,
        expert: 0,
        payload: Payload::from_tensor(&t),
    };
    c.bench_function("star_roundtrip_96x32", |b| {
        b.iter(|| {
            hub.send(0, black_box(&msg));
            black_box(hub.recv())
        });
    });
    hub.send(0, &Message::Shutdown);
    echo.join().unwrap();
}

criterion_group!(benches, bench_encode_decode, bench_star_roundtrip);
criterion_main!(benches);

//! Micro-bench: message serialization and the master↔worker transport.
//!
//! Run with `cargo bench -p vela-bench --bench transport`.

use std::sync::Arc;
use vela::cluster::TrafficLedger;
use vela::prelude::*;
use vela::runtime::message::{Message, Payload};
use vela::runtime::transport::{star, tcp_star, MasterHub, WorkerPort};
use vela_bench::microbench::bench;

fn bench_encode_decode() {
    let mut rng = DetRng::new(1);
    let t = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    let msg = Message::TokenBatch {
        block: 5,
        expert: 3,
        payload: Payload::from_tensor(&t),
    };
    let bytes = msg.encode();
    println!("wire frame: {} bytes", bytes.len());
    bench("wire/encode_real_96x32", || msg.encode());
    bench("wire/decode_real_96x32", || {
        Message::decode(&bytes).unwrap()
    });
    let virt = Message::TokenBatch {
        block: 5,
        expert: 3,
        payload: Payload::Virtual {
            rows: 4096,
            bytes_per_token: 8192,
        },
    };
    bench("wire/encode_virtual", || virt.encode());
}

fn bench_star_roundtrip(name: &str, mut hub: MasterHub, mut ports: Vec<WorkerPort>) {
    let mut port = ports.remove(0);
    // Echo thread.
    let echo = std::thread::spawn(move || loop {
        match port.recv() {
            Ok(Message::Shutdown) | Err(_) => break,
            Ok(msg) => port.send(&msg).unwrap(),
        }
    });
    let mut rng = DetRng::new(2);
    let t = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    let msg = Message::TokenBatch {
        block: 0,
        expert: 0,
        payload: Payload::from_tensor(&t),
    };
    bench(name, || {
        hub.send(0, &msg).unwrap();
        hub.recv().unwrap()
    });
    hub.send(0, &Message::Shutdown).unwrap();
    echo.join().unwrap();
}

fn main() {
    bench_encode_decode();
    let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
    let (hub, ports) = star(ledger, DeviceId(0), &[DeviceId(2)]);
    bench_star_roundtrip("star_roundtrip_96x32/channel", hub, ports);
    let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
    let (hub, ports) = tcp_star(ledger, DeviceId(0), &[DeviceId(2)]).unwrap();
    bench_star_roundtrip("star_roundtrip_96x32/tcp", hub, ports);
}

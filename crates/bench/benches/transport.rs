//! Micro-bench: message serialization and the master↔worker transport.
//!
//! Run with `cargo bench -p vela-bench --bench transport`.

use std::sync::Arc;
use vela::cluster::TrafficLedger;
use vela::prelude::*;
use vela::runtime::message::{Message, Payload};
use vela::runtime::transport::star;
use vela_bench::microbench::bench;

fn bench_encode_decode() {
    let mut rng = DetRng::new(1);
    let t = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    let msg = Message::TokenBatch {
        block: 5,
        expert: 3,
        payload: Payload::from_tensor(&t),
    };
    let bytes = msg.encode();
    println!("wire frame: {} bytes", bytes.len());
    bench("wire/encode_real_96x32", || msg.encode());
    bench("wire/decode_real_96x32", || Message::decode(&bytes));
    let virt = Message::TokenBatch {
        block: 5,
        expert: 3,
        payload: Payload::Virtual {
            rows: 4096,
            bytes_per_token: 8192,
        },
    };
    bench("wire/encode_virtual", || virt.encode());
}

fn bench_star_roundtrip() {
    let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
    let (hub, mut ports) = star(ledger, DeviceId(0), &[DeviceId(2)]);
    let port = ports.remove(0);
    // Echo thread.
    let echo = std::thread::spawn(move || loop {
        match port.recv() {
            Message::Shutdown => break,
            msg => port.send(&msg),
        }
    });
    let mut rng = DetRng::new(2);
    let t = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    let msg = Message::TokenBatch {
        block: 0,
        expert: 0,
        payload: Payload::from_tensor(&t),
    };
    bench("star_roundtrip_96x32", || {
        hub.send(0, &msg);
        hub.recv()
    });
    hub.send(0, &Message::Shutdown);
    echo.join().unwrap();
}

fn main() {
    bench_encode_decode();
    bench_star_roundtrip();
}

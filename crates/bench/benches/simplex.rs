//! Criterion bench: the placement LP at paper scale.
//!
//! The paper claims the LP "can be efficiently solved by off-the-shelf
//! solvers"; this bench demonstrates the from-scratch bounded simplex
//! handles the 6-worker × 32-block × 8-expert instance comfortably.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vela::prelude::*;

fn problem(blocks: usize) -> PlacementProblem {
    let spec = MoeSpec::mixtral_8x7b();
    let profile = LocalityProfile::synthetic("b", blocks, spec.experts, 1.2, 3);
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    PlacementProblem::new(
        topology,
        DeviceId(0),
        workers,
        profile.to_matrix(),
        8192.0,
        spec.token_bytes(),
        PlacementProblem::even_capacities(blocks, spec.experts, 6, 5),
    )
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_lp");
    group.sample_size(10);
    for blocks in [8usize, 16, 32] {
        let p = problem(blocks);
        group.bench_with_input(BenchmarkId::new("vela_solve", blocks), &p, |b, p| {
            b.iter(|| black_box(Strategy::Vela.place(black_box(p))));
        });
        group.bench_with_input(BenchmarkId::new("greedy_solve", blocks), &p, |b, p| {
            b.iter(|| black_box(Strategy::Greedy.place(black_box(p))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);

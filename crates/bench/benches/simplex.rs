//! Micro-bench: the placement LP at paper scale.
//!
//! The paper claims the LP "can be efficiently solved by off-the-shelf
//! solvers"; this bench demonstrates the from-scratch bounded simplex
//! handles the 6-worker × 32-block × 8-expert instance comfortably.
//!
//! Run with `cargo bench -p vela-bench --bench simplex`.

use vela::prelude::*;
use vela_bench::microbench::bench;

fn problem(blocks: usize) -> PlacementProblem {
    let spec = MoeSpec::mixtral_8x7b();
    let profile = LocalityProfile::synthetic("b", blocks, spec.experts, 1.2, 3);
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
    PlacementProblem::new(
        topology,
        DeviceId(0),
        workers,
        profile.to_matrix(),
        8192.0,
        spec.token_bytes(),
        PlacementProblem::even_capacities(blocks, spec.experts, 6, 5),
    )
}

fn main() {
    for blocks in [8usize, 16, 32] {
        let p = problem(blocks);
        bench(&format!("placement_lp/vela_solve/{blocks}"), || {
            Strategy::Vela.place(&p)
        });
        bench(&format!("placement_lp/greedy_solve/{blocks}"), || {
            Strategy::Greedy.place(&p)
        });
    }
}

//! Criterion bench: tensor kernels on the hot path of the micro models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vela::prelude::*;
use vela::tensor::ops;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let mut rng = DetRng::new(1);
        let a = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).matmul(black_box(&b))));
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).matmul_tn(black_box(&b))));
        });
    }
    group.finish();
}

fn bench_softmax_topk(c: &mut Criterion) {
    let mut rng = DetRng::new(2);
    let logits = Tensor::uniform((4096, 8), -3.0, 3.0, &mut rng);
    c.bench_function("softmax_rows_4096x8", |b| {
        b.iter(|| black_box(ops::softmax_rows(black_box(&logits))));
    });
    let probs = ops::softmax_rows(&logits);
    c.bench_function("topk2_rows_4096x8", |b| {
        b.iter(|| black_box(ops::topk_rows(black_box(&probs), 2)));
    });
}

fn bench_expert_forward(c: &mut Criterion) {
    use vela::nn::swiglu::SwiGlu;
    let mut rng = DetRng::new(3);
    let mut ffn = SwiGlu::new("e", 32, 64, &mut rng);
    let x = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    c.bench_function("expert_forward_96tok", |b| {
        b.iter(|| black_box(ffn.forward(black_box(&x))));
    });
    c.bench_function("expert_fwd_bwd_96tok", |b| {
        let g = Tensor::ones((96, 32));
        b.iter(|| {
            ffn.forward(black_box(&x));
            black_box(ffn.backward(black_box(&g)))
        });
    });
}

criterion_group!(benches, bench_matmul, bench_softmax_topk, bench_expert_forward);
criterion_main!(benches);

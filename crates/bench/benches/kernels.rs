//! Micro-bench: tensor kernels on the hot path of the micro models.
//!
//! Run with `cargo bench -p vela-bench --bench kernels`.

use vela::prelude::*;
use vela::tensor::ops;
use vela_bench::microbench::bench;

fn bench_matmul() {
    for n in [32usize, 64, 128] {
        let mut rng = DetRng::new(1);
        let a = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform((n, n), -1.0, 1.0, &mut rng);
        bench(&format!("matmul/nn/{n}"), || a.matmul(&b));
        bench(&format!("matmul/tn/{n}"), || a.matmul_tn(&b));
    }
}

fn bench_softmax_topk() {
    let mut rng = DetRng::new(2);
    let logits = Tensor::uniform((4096, 8), -3.0, 3.0, &mut rng);
    bench("softmax_rows_4096x8", || ops::softmax_rows(&logits));
    let probs = ops::softmax_rows(&logits);
    bench("topk2_rows_4096x8", || ops::topk_rows(&probs, 2));
}

fn bench_expert_forward() {
    use vela::nn::swiglu::SwiGlu;
    let mut rng = DetRng::new(3);
    let mut ffn = SwiGlu::new("e", 32, 64, &mut rng);
    let x = Tensor::uniform((96, 32), -1.0, 1.0, &mut rng);
    bench("expert_forward_96tok", || ffn.forward(&x));
    let g = Tensor::ones((96, 32));
    bench("expert_fwd_bwd_96tok", || {
        ffn.forward(&x);
        ffn.backward(&g)
    });
}

fn main() {
    bench_matmul();
    bench_softmax_topk();
    bench_expert_forward();
}

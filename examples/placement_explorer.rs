//! Placement explorer: compare expert-placement strategies on a custom
//! cluster, at full Mixtral-8x7B dimensions, without training anything.
//!
//! Shows how to drive the placement layer directly: build a topology,
//! provide an access-probability matrix, and evaluate the paper's
//! expected-communication-time objective for any strategy.
//!
//! Run: `cargo run --release -p vela --example placement_explorer`

use vela::prelude::*;
use vela::runtime::virtual_engine::capacity_from_memory;

fn main() {
    let spec = MoeSpec::mixtral_8x7b();
    println!(
        "Mixtral-8x7B shape: {} blocks x {} experts, top-{}, H={}",
        spec.blocks, spec.experts, spec.top_k, spec.hidden
    );

    // A custom cluster: 2 nodes x 4 GPUs, faster interconnect than the
    // paper's testbed.
    let topology = Topology::builder(2, 4)
        .intra_bandwidth(Bandwidth::from_gbytes_per_sec(25.0))
        .inter_bandwidth(Bandwidth::from_gbytes_per_sec(2.5))
        .build();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let caps = capacity_from_memory(&topology, &workers, &spec, 0.5);
    println!(
        "cluster: {} nodes x {} GPUs, capacities {:?} experts/GPU",
        topology.node_count(),
        workers.len() / topology.node_count(),
        caps
    );

    for zipf in [0.5, 1.2] {
        let profile = LocalityProfile::synthetic("explore", spec.blocks, spec.experts, zipf, 11);
        let problem = PlacementProblem::new(
            topology.clone(),
            DeviceId(0),
            workers.clone(),
            profile.to_matrix(),
            8192.0, // batch 8 x seq 512 x top-2 assignments per block
            spec.token_bytes(),
            caps.clone(),
        );
        println!(
            "\nrouting skew zipf={zipf} (concentration {:.3}):",
            profile.mean_concentration()
        );
        println!(
            "{:>12} | {:>16} | {:>16} | {:>14}",
            "strategy", "E[comm] (s/step)", "E[external] (MB)", "load node0"
        );
        for strategy in [
            Strategy::Sequential,
            Strategy::Random { seed: 5 },
            Strategy::Greedy,
            Strategy::Vela,
        ] {
            let placement = strategy.place(&problem);
            let load = placement.load();
            let node0: usize = load[..4].iter().sum();
            println!(
                "{:>12} | {:>16.4} | {:>16.1} | {:>10}/{}",
                strategy.label(),
                problem.expected_comm_time(&placement),
                problem.expected_external_bytes(&placement) / (1024.0 * 1024.0),
                node0,
                spec.total_experts()
            );
        }
    }
    println!("\n(Vela packs hot experts onto the master's node, within capacity limits)");
}

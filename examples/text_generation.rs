//! Qualitative check: pre-train a small MoE model, fine-tune it on the
//! drama corpus through the distributed runtime, then sample text from the
//! merged result — watching the style shift toward the fine-tuning domain.
//!
//! Run: `cargo run --release -p vela --example text_generation`

use vela::model::finetune::{finetune, prepare_for_finetune, FinetuneConfig};
use vela::prelude::*;

fn sample(
    model: &mut MoeModel,
    experts: &mut LocalExpertStore,
    tok: &CharTokenizer,
    prompt: &str,
) -> String {
    let ids = tok.encode(prompt);
    let out = model.generate(&ids, 120, 0.7, &mut DetRng::new(7), experts);
    tok.decode(&out)
}

fn main() {
    let tok = CharTokenizer::new();
    let mut cfg = ModelConfig::tiny_mistral(tok.vocab_size());
    cfg.seq_len = 64;

    println!("pre-training on the mixed corpus (this is the slow part)...");
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 400,
            batch_size: 8,
            corpus_chars: 200_000,
            seed: 17,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    println!(
        "pre-train loss {:.3} -> {:.3}",
        pre.losses[0],
        pre.losses.last().unwrap()
    );

    let prompt = "ROMEO:\n";
    println!(
        "\n--- before fine-tuning ---\n{}",
        sample(&mut model, &mut experts, &tok, prompt)
    );

    println!("\nfine-tuning on the drama corpus (LoRA r=8)...");
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(3),
    );
    let stats = finetune(
        &mut model,
        &mut experts,
        &FinetuneConfig {
            steps: 200,
            batch_size: 8,
            corpus: Corpus::TinyShakespeare,
            corpus_chars: 120_000,
            optim: AdamWConfig {
                lr: 1e-3, // scaled up for the micro model
                ..AdamWConfig::default()
            },
            ..FinetuneConfig::default()
        },
    );
    println!(
        "fine-tune loss {:.3} -> {:.3}",
        stats[0].loss,
        stats.last().unwrap().loss
    );

    println!(
        "\n--- after fine-tuning ---\n{}",
        sample(&mut model, &mut experts, &tok, prompt)
    );
    println!("\n(the fine-tuned model should produce more drama-shaped text: speaker tags, archaic words)");
}

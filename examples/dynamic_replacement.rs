//! Dynamic re-placement: start fine-tuning with a naive placement, watch
//! the live routing statistics, then re-solve the placement LP and migrate
//! experts *mid-run* — the runtime flexibility VELA's broker design makes
//! possible (§IV-A).
//!
//! Run: `cargo run --release -p vela --example dynamic_replacement`

use vela::model::finetune::prepare_for_finetune;
use vela::prelude::*;

fn main() {
    let tok = CharTokenizer::new();
    let mut cfg = ModelConfig::tiny_mistral(tok.vocab_size());
    cfg.seq_len = 32;

    println!("pre-training...");
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 80,
            batch_size: 4,
            corpus_chars: 50_000,
            seed: 13,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(1),
    );

    // Start with sequential placement — no locality awareness.
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let naive = Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    );
    let mut rt = RealRuntime::launch(
        model,
        experts,
        naive,
        topology.clone(),
        DeviceId(0),
        workers.clone(),
        AdamWConfig::default(),
    );

    let data = TokenDataset::from_text(&tok, &Corpus::WikiText.generate(60_000, 4));
    let mut rng = DetRng::new(2);
    let mut tracker = AccessTracker::new(cfg.blocks, cfg.experts);

    println!("\nphase 1: naive placement, observing routing");
    let mut naive_external = 0u64;
    for step in 1..=6 {
        let b = data.sample_batch(4, cfg.seq_len, &mut rng);
        let m = rt
            .train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len)
            .expect("transport failed mid-step");
        tracker.record(&rt.model().routing_snapshot());
        naive_external += m.traffic.external_total();
        println!(
            "  step {step}: loss {:.4}, external {:.2} MB",
            m.loss.unwrap(),
            m.traffic.external_total() as f64 / 1048576.0
        );
    }

    // Re-plan from the observed routing distribution.
    println!("\nre-planning from live routing statistics...");
    let profile = LocalityProfile::from_frequencies("live", tracker.frequency_matrix());
    let problem = PlacementProblem::new(
        topology,
        DeviceId(0),
        workers,
        profile.to_matrix(),
        (4 * cfg.seq_len * cfg.top_k) as f64,
        (cfg.dim * 4) as u64,
        PlacementProblem::even_capacities(cfg.blocks, cfg.experts, 6, 2),
    );
    let optimized = Strategy::Vela.place(&problem);
    let handle = rt
        .apply_placement(&optimized)
        .expect("transport failed mid-migration");
    match handle.in_flight {
        0 => println!(
            "migrated {} experts ({:.2} MB of parameters) while the session stayed live",
            handle.moved,
            handle.bytes as f64 / 1048576.0
        ),
        lanes => println!(
            "migrating {} experts in the background ({lanes} lanes streaming \
             under the next steps)",
            handle.moved
        ),
    }

    println!("\nphase 2: locality-aware placement");
    let mut optimized_external = 0u64;
    for step in 7..=12 {
        let b = data.sample_batch(4, cfg.seq_len, &mut rng);
        let m = rt
            .train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len)
            .expect("transport failed mid-step");
        optimized_external += m.traffic.external_total();
        println!(
            "  step {step}: loss {:.4}, external {:.2} MB",
            m.loss.unwrap(),
            m.traffic.external_total() as f64 / 1048576.0
        );
    }

    println!(
        "\nexternal traffic per phase: naive {:.2} MB -> optimized {:.2} MB ({:+.1}%)",
        naive_external as f64 / 1048576.0,
        optimized_external as f64 / 1048576.0,
        (optimized_external as f64 / naive_external as f64 - 1.0) * 100.0
    );
    if rt.migrations_in_flight() > 0 {
        let committed = rt
            .finish_migrations()
            .expect("transport failed flushing migrations");
        println!("flushed {committed} background migrations before shutdown");
    }
    rt.shutdown();
}

//! Locality probe: measure and visualize the expert-access pattern of a
//! pre-trained MoE model on different corpora — the paper's §III
//! measurement study in miniature.
//!
//! Run: `cargo run --release -p vela --example locality_probe`

use vela::model::finetune::prepare_for_finetune;
use vela::prelude::*;

fn heat(p: f64) -> char {
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
    RAMP[(((p * 2.5).min(0.999)) * RAMP.len() as f64) as usize]
}

fn main() {
    let tok = CharTokenizer::new();
    let cfg = ModelConfig::tiny_mistral(tok.vocab_size());
    println!("pre-training a TinyMistral-like model on the mixed corpus...");
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 150,
            batch_size: 8,
            corpus_chars: 100_000,
            seed: 3,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(1),
    );

    for corpus in Corpus::FINE_TUNE {
        let dataset = TokenDataset::from_text(&tok, &corpus.generate(40_000, 9));
        let profile = measure_locality(&mut model, &mut experts, &dataset, 8, 16);
        println!(
            "\n{corpus}: mean concentration {:.3} (0 = uniform routing)",
            profile.mean_concentration()
        );
        println!("  block | expert access heat (1..{})", cfg.experts);
        for l in 0..cfg.blocks {
            let row: String = profile.row(l).iter().map(|&p| heat(p)).collect();
            let hottest = profile.row(l).iter().cloned().fold(0.0f64, f64::max);
            println!("  {:>5} | [{}]  peak {:.2}", l + 1, row, hottest);
        }
    }
    println!("\n(different corpora light up different experts — that's expert locality)");
}

//! Distributed fine-tuning, assembled by hand from the library pieces —
//! the long-form version of what `VelaSession` automates — ending with a
//! live parity check against a single-process run (the paper's §V-A
//! "identical computation logic" claim).
//!
//! Run: `cargo run --release -p vela --example distributed_finetune`

use vela::model::finetune::prepare_for_finetune;
use vela::prelude::*;

fn main() {
    let tok = CharTokenizer::new();
    let mut cfg = ModelConfig::test_small();
    cfg.vocab = tok.vocab_size();

    // 1. Pre-train (twice, identically: one copy fine-tunes locally, the
    //    other distributed).
    println!("pre-training two identical model copies...");
    let pcfg = PretrainConfig {
        steps: 40,
        batch_size: 4,
        corpus_chars: 30_000,
        seed: 21,
        ..PretrainConfig::default()
    };
    let a = pretrain(&cfg, &pcfg);
    let b = pretrain(&cfg, &pcfg);
    let (mut local_model, mut local_experts) = (a.model, a.experts);
    let (mut dist_model, mut dist_experts) = (b.model, b.experts);
    prepare_for_finetune(
        &mut local_model,
        &mut local_experts,
        LoraConfig::default(),
        &mut DetRng::new(5),
    );
    prepare_for_finetune(
        &mut dist_model,
        &mut dist_experts,
        LoraConfig::default(),
        &mut DetRng::new(5),
    );

    // 2. Measure locality and solve the placement.
    let dataset = TokenDataset::from_text(&tok, &Corpus::WikiText.generate(30_000, 8));
    let profile = measure_locality(&mut dist_model, &mut dist_experts, &dataset, 4, 8);
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let problem = PlacementProblem::new(
        topology.clone(),
        DeviceId(0),
        workers.clone(),
        profile.to_matrix(),
        (4 * cfg.seq_len * cfg.top_k) as f64,
        (cfg.dim * 4) as u64,
        PlacementProblem::even_capacities(cfg.blocks, cfg.experts, workers.len(), 2),
    );
    let placement = Strategy::Vela.place(&problem);
    println!("placement load per worker: {:?}", placement.load());

    // 3. Launch the master-worker runtime and fine-tune.
    let mut runtime = RealRuntime::launch(
        dist_model,
        dist_experts,
        placement,
        topology,
        DeviceId(0),
        workers,
        AdamWConfig::default(),
    );
    let mut opt_m = AdamW::new(AdamWConfig::default());
    let mut opt_e = AdamW::new(AdamWConfig::default());

    println!(
        "\n{:>4} | {:>10} | {:>10} | {:>12}",
        "step", "dist loss", "local loss", "ext MB/node"
    );
    let mut rng = DetRng::new(77);
    use vela::nn::param::Module;
    for step in 1..=8 {
        let batch = dataset.sample_batch(4, cfg.seq_len, &mut rng);
        // Distributed step.
        let m = runtime
            .train_step(
                &batch.inputs,
                &batch.targets,
                batch.batch_size,
                batch.seq_len,
            )
            .expect("transport failed mid-step");
        // Identical local step.
        local_experts.zero_grad();
        let stats = local_model.train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
            &mut local_experts,
        );
        opt_m.step(&mut local_model);
        opt_e.step(&mut local_experts);
        println!(
            "{step:>4} | {:>10.5} | {:>10.5} | {:>12.3}",
            m.loss.unwrap(),
            stats.loss,
            m.traffic.external_avg_per_node() / (1024.0 * 1024.0)
        );
        assert_eq!(
            m.loss.unwrap(),
            stats.loss,
            "distributed must equal local bit-for-bit"
        );
    }
    runtime.shutdown();
    println!("\nparity verified: distributed fine-tuning is computation-identical to local");
}

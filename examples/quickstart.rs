//! Quickstart: pre-train a small MoE model, let VELA measure its expert
//! locality, solve the placement LP, and fine-tune it on the distributed
//! master–worker runtime.
//!
//! Run: `cargo run --release -p vela --example quickstart`

use vela::prelude::*;

fn main() {
    println!("VELA quickstart");
    println!("===============");

    // A small MoE transformer (the library scales the same code up).
    let mut cfg = ModelConfig::tiny_mistral(CharTokenizer::new().vocab_size());
    cfg.seq_len = 32;

    // Pre-train -> LoRA-freeze -> measure locality -> place -> launch, all
    // behind one builder. Strategy::Vela runs the paper's placement LP.
    let mut session = VelaSession::builder()
        .model(cfg)
        .pretrain_steps(60)
        .corpus(Corpus::TinyShakespeare)
        .corpus_chars(40_000)
        .strategy(Strategy::Vela)
        .finetune_batch(4)
        .seed(7)
        .build();

    println!("\ntransport: {}", session.transport());
    println!(
        "placement (experts per worker): {:?}",
        session.placement().load()
    );

    let metrics = session.finetune(10);
    println!(
        "\n{:>5} | {:>8} | {:>14} | {:>12}",
        "step", "loss", "ext MB/node", "sim step (s)"
    );
    for m in &metrics {
        println!(
            "{:>5} | {:>8.4} | {:>14.3} | {:>12.6}",
            m.step,
            m.loss.unwrap(),
            m.traffic.external_avg_per_node() / (1024.0 * 1024.0),
            m.time.total()
        );
    }
    let summary = RunSummary::from_steps(&metrics);
    println!(
        "\navg external traffic per node: {:.3} MB/step, avg simulated step time: {:.6} s",
        summary.avg_external_per_node / (1024.0 * 1024.0),
        summary.avg_step_time
    );

    session.shutdown();
    // With VELA_TRACE set, make sure every buffered trace event reaches
    // the sink before the process exits (idempotent when disabled).
    vela::obs::flush();
    println!("\ndone — see the fig3/fig5/fig6/fig7 binaries in vela-bench for the full evaluation");
}

//! Full-scale workload simulation without any training: drive the
//! master–worker virtual engine and the expert-parallelism baseline at
//! genuine Mixtral-8x7B dimensions on the paper's testbed, directly from a
//! synthetic locality profile.
//!
//! Useful for what-if studies: tweak the topology, the routing skew or the
//! placement strategy and watch traffic/time respond in seconds.
//!
//! Run: `cargo run --release -p vela --example scale_simulation`

use vela::prelude::*;
use vela::runtime::virtual_engine::capacity_from_memory;

fn main() {
    let spec = MoeSpec::mixtral_8x7b();
    let scale = ScaleConfig::paper_default(spec);
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    println!(
        "simulating {} blocks x {} experts (H={}, fp{}), batch {} x {} tokens, 3x2-GPU testbed",
        spec.blocks, spec.experts, spec.hidden, spec.bits, scale.batch, scale.seq
    );

    let profile = LocalityProfile::synthetic("whatif", spec.blocks, spec.experts, 1.1, 42);
    println!(
        "routing concentration: {:.3}\n",
        profile.mean_concentration()
    );

    // Expert parallelism.
    let mut ep = EpEngine::new(
        topology.clone(),
        workers.clone(),
        profile.clone(),
        scale.clone(),
    );
    let ep_summary = RunSummary::from_steps(&ep.run(25));

    // Master-worker with the LP placement.
    let caps = capacity_from_memory(&topology, &workers, &spec, 0.5);
    let problem = PlacementProblem::new(
        topology.clone(),
        DeviceId(0),
        workers.clone(),
        profile.to_matrix(),
        (scale.tokens() * spec.top_k) as f64,
        spec.token_bytes(),
        caps,
    );
    println!(
        "placement LP: {} variables, solving...",
        6 * spec.blocks * spec.experts + spec.blocks
    );
    let placement = Strategy::Vela.place(&problem);
    println!("experts per worker: {:?}", placement.load());
    let mut engine =
        VirtualEngine::launch(topology, DeviceId(0), workers, placement, profile, scale);
    let vela_summary = RunSummary::from_steps(&engine.run(25));
    engine.shutdown();

    println!(
        "\n{:>8} | {:>14} | {:>12} | {:>10}",
        "engine", "ext MB/node", "step (s)", "sync (s)"
    );
    for (name, s) in [("EP", &ep_summary), ("Vela", &vela_summary)] {
        println!(
            "{name:>8} | {:>14.1} | {:>12.4} | {:>10.4}",
            s.avg_external_per_node / 1048576.0,
            s.avg_step_time,
            s.avg_sync_time
        );
    }
    println!(
        "\nVela: {:.1}% less cross-node traffic, {:.1}% faster steps",
        RunSummary::reduction_vs(
            vela_summary.avg_external_per_node,
            ep_summary.avg_external_per_node
        ) * 100.0,
        RunSummary::reduction_vs(vela_summary.avg_step_time, ep_summary.avg_step_time) * 100.0
    );
}

//! Multi-process loopback smoke test: a master and two real `vela_worker`
//! OS processes over TCP, checked byte-for-byte against the in-process
//! channel transport.
//!
//! Exercises the whole process-mode path — spawn, handshake, bootstrap,
//! expert seeding, real-tensor training, virtual-payload stepping, expert
//! fetch-back and clean shutdown — and exits non-zero if the TCP ledger
//! windows differ from the channel ones by a single byte.
//!
//! Run: `cargo run --release -p vela --example tcp_smoke`
//! (requires the `vela_worker` binary, built by `cargo build --release`).

use std::process::ExitCode;

use vela::prelude::*;

/// Same VirtualEngine workload under `transport`; returns per-step traffic.
fn virtual_run(transport: TransportConfig) -> Vec<(u64, u64)> {
    let spec = MoeSpec {
        blocks: 2,
        experts: 4,
        top_k: 2,
        hidden: 256,
        ffn: 512,
        bits: 16,
    };
    let scale = ScaleConfig {
        batch: 2,
        seq: 32,
        ..ScaleConfig::paper_default(spec)
    };
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % 2).collect())
            .collect(),
        2,
    );
    let profile = LocalityProfile::synthetic("smoke", spec.blocks, spec.experts, 1.0, 3);
    let mut engine = VirtualEngine::launch_with(
        transport,
        Topology::paper_testbed(),
        DeviceId(0),
        vec![DeviceId(1), DeviceId(2)],
        placement,
        profile,
        scale,
    );
    let metrics = engine.run(3);
    println!(
        "  virtual over {:>11}: {} steps, {} total bytes",
        engine.transport_label(),
        metrics.len(),
        metrics.iter().map(|m| m.traffic.total_bytes).sum::<u64>()
    );
    engine.shutdown();
    metrics
        .iter()
        .map(|m| (m.traffic.total_bytes, m.traffic.external_total()))
        .collect()
}

/// A tiny real-tensor training run under `transport`; returns the losses.
fn real_run(transport: TransportConfig) -> Vec<f32> {
    let cfg = ModelConfig::test_small_with_tokenizer_vocab();
    let mut rng = DetRng::new(41);
    let (model, experts) = MoeModel::new(&cfg, &mut rng);
    let placement = Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % 2).collect())
            .collect(),
        2,
    );
    let mut rt = RealRuntime::launch_with(
        transport,
        model,
        experts,
        placement,
        Topology::paper_testbed(),
        DeviceId(0),
        vec![DeviceId(1), DeviceId(2)],
        AdamWConfig::default(),
    );
    let n = 2 * cfg.seq_len;
    let inputs: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    let targets: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    let losses: Vec<f32> = (0..2)
        .map(|_| {
            rt.train_step(&inputs, &targets, 2, cfg.seq_len)
                .expect("transport failed mid-step")
                .loss
                .unwrap()
        })
        .collect();
    println!(
        "  real    over {:>11}: losses {:?}",
        rt.transport_label(),
        losses
    );
    let (_, merged) = rt.shutdown();
    assert_eq!(
        merged.present_count(),
        cfg.blocks * cfg.experts,
        "expert population must reassemble completely"
    );
    losses
}

fn main() -> ExitCode {
    println!("VELA multi-process TCP smoke (master + 2 vela_worker processes)");

    let channel_traffic = virtual_run(TransportConfig::channel());
    let tcp_traffic = virtual_run(TransportConfig::tcp_processes());
    if channel_traffic != tcp_traffic {
        eprintln!("FAIL: ledger windows differ across transports");
        eprintln!("  channel: {channel_traffic:?}");
        eprintln!("  tcp:     {tcp_traffic:?}");
        return ExitCode::FAILURE;
    }
    println!("  ledger parity: channel == tcp, byte for byte");

    let channel_losses = real_run(TransportConfig::channel());
    let tcp_losses = real_run(TransportConfig::tcp_processes());
    let same = channel_losses
        .iter()
        .zip(&tcp_losses)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    if !same {
        eprintln!("FAIL: losses differ across transports");
        eprintln!("  channel: {channel_losses:?}");
        eprintln!("  tcp:     {tcp_losses:?}");
        return ExitCode::FAILURE;
    }
    println!("  training parity: channel == tcp, bit for bit");

    vela::obs::flush();
    println!("ok");
    ExitCode::SUCCESS
}

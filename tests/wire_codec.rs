//! Property tests for the wire codec (seeded, dependency-free).
//!
//! The TCP transport feeds [`Message::decode`] whatever arrives on a
//! socket, so the codec is a trust boundary: random messages must survive
//! a round trip bit-for-bit, and truncated or corrupted frames must come
//! back as [`WireError`]s — never a panic, never a bogus allocation.

use vela::prelude::*;
use vela::runtime::message::{
    GroupItem, GroupPass, Message, PackedData, PackedGroup, PackedReply, Payload,
};
use vela::runtime::wire::WireError;

const CASES: u64 = 200;

fn random_pass(rng: &mut DetRng) -> GroupPass {
    if rng.below(2) == 0 {
        GroupPass::Forward
    } else {
        GroupPass::Backward
    }
}

fn random_items(rng: &mut DetRng) -> Vec<GroupItem> {
    (0..rng.below(6))
        .map(|_| GroupItem {
            expert: rng.below(1 << 8) as u32,
            payload: random_payload(rng),
        })
        .collect()
}

fn random_payload(rng: &mut DetRng) -> Payload {
    if rng.below(2) == 0 {
        let rows = 1 + rng.below(12);
        let cols = 1 + rng.below(12);
        Payload::from_tensor(&Tensor::uniform((rows, cols), -100.0, 100.0, rng))
    } else {
        Payload::Virtual {
            rows: 1 + rng.below(1 << 20) as u32,
            bytes_per_token: 1 + rng.below(1 << 14) as u32,
        }
    }
}

/// Row groups for the packed codec: small widths, a few experts, any
/// f32 bit pattern except NaN (NaN breaks `PartialEq`, not the codec —
/// bitwise survival is asserted separately).
fn random_parts(rng: &mut DetRng, width: u32) -> Vec<(u32, Vec<f32>)> {
    (0..1 + rng.below(5))
        .map(|gi| {
            let rows = 1 + rng.below(4);
            let vals = (0..rows * width as usize)
                .map(|_| loop {
                    let v = f32::from_bits(rng.next_u64() as u32);
                    if !v.is_nan() {
                        break v;
                    }
                })
                .collect();
            (gi as u32, vals)
        })
        .collect()
}

fn random_packed_dispatch(rng: &mut DetRng) -> Message {
    let width = 1 + rng.below(8) as u32;
    let block = rng.below(1 << 10) as u32;
    let pass = random_pass(rng);
    let chunk = rng.below(1 << 8) as u32;
    match rng.below(3) {
        0 => {
            let parts = random_parts(rng, width);
            Message::PackedDispatch(PackedGroup::pack(
                block,
                pass,
                chunk,
                width,
                false,
                parts.iter().map(|(e, v)| (*e, v.as_slice())),
            ))
        }
        1 => {
            let parts = random_parts(rng, width);
            Message::PackedDispatch(PackedGroup::pack(
                block,
                pass,
                chunk,
                width,
                true,
                parts.iter().map(|(e, v)| (*e, v.as_slice())),
            ))
        }
        _ => Message::PackedDispatch(PackedGroup::pack_virtual(
            block,
            pass,
            chunk,
            width,
            (0..1 + rng.below(5)).map(|e| (e as u32, 1 + rng.below(1 << 10) as u32)),
        )),
    }
}

fn random_packed_result(rng: &mut DetRng) -> Message {
    let width = 1 + rng.below(8) as u32;
    let rows = 1 + rng.below(8) as u32;
    let items = 1 + rng.below(6) as u32;
    let data = match rng.below(3) {
        0 => PackedData::F32(
            (0..rows * width)
                .map(|_| rng.uniform(-100.0, 100.0))
                .collect(),
        ),
        1 => PackedData::Int8 {
            scales: (0..rows).map(|_| rng.uniform(0.0, 2.0)).collect(),
            codes: (0..rows * width)
                .map(|_| rng.below(256) as u8 as i8)
                .collect(),
        },
        _ => PackedData::Virtual,
    };
    Message::PackedResult(PackedReply {
        block: rng.below(1 << 10) as u32,
        pass: random_pass(rng),
        chunk: rng.below(1 << 8) as u32,
        width,
        items,
        rows,
        data,
    })
}

fn random_message(rng: &mut DetRng) -> Message {
    let block = rng.below(1 << 10) as u32;
    let expert = rng.below(1 << 8) as u32;
    match rng.below(15) {
        0 => Message::StepBegin {
            step: rng.below(usize::MAX / 2) as u64,
        },
        1 => Message::TokenBatch {
            block,
            expert,
            payload: random_payload(rng),
        },
        2 => Message::ExpertResult {
            block,
            expert,
            payload: random_payload(rng),
        },
        3 => Message::GradBatch {
            block,
            expert,
            payload: random_payload(rng),
        },
        4 => Message::GradResult {
            block,
            expert,
            payload: random_payload(rng),
        },
        5 => Message::StepEnd,
        6 => Message::StepDone,
        7 => Message::Shutdown,
        8 => Message::FetchExpert { block, expert },
        9 => Message::ExpertState {
            block,
            expert,
            data: (0..rng.below(256)).map(|_| rng.below(256) as u8).collect(),
        },
        10 => Message::InstallDone { block, expert },
        11 => Message::DispatchGroup {
            block,
            pass: random_pass(rng),
            chunk: rng.below(1 << 8) as u32,
            items: random_items(rng),
        },
        12 => Message::ResultGroup {
            block,
            pass: random_pass(rng),
            chunk: rng.below(1 << 8) as u32,
            items: random_items(rng),
        },
        13 => random_packed_dispatch(rng),
        _ => random_packed_result(rng),
    }
}

/// Every message kind round-trips bit-for-bit.
#[test]
fn random_messages_roundtrip() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let msg = random_message(&mut rng);
        let frame = msg.encode();
        assert_eq!(Message::decode(&frame).unwrap(), msg, "seed {seed}");
    }
}

/// Any strict prefix of a valid frame is an error — the codec's length
/// and trailing-byte checks make partial reads impossible to mistake for
/// complete messages.
#[test]
fn truncated_frames_are_errors_not_panics() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x7C0 + seed);
        let frame = random_message(&mut rng).encode();
        // The empty prefix plus a few random cuts.
        let mut cuts = vec![0, frame.len() - 1];
        for _ in 0..4 {
            cuts.push(rng.below(frame.len()));
        }
        for cut in cuts {
            assert!(
                Message::decode(&frame[..cut]).is_err(),
                "seed {seed}: {cut}-byte prefix of a {}-byte frame decoded",
                frame.len()
            );
        }
    }
}

/// Byte flips never panic: they decode to some message or a clean error.
#[test]
fn corrupted_frames_never_panic() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(0xBAD + seed);
        let mut frame = random_message(&mut rng).encode();
        for _ in 0..8 {
            let at = rng.below(frame.len());
            frame[at] ^= 1 << rng.below(8);
            let _ = Message::decode(&frame);
        }
        // Appended garbage is caught by the trailing-bytes check.
        let mut padded = random_message(&mut rng).encode();
        padded.push(rng.below(256) as u8);
        assert!(
            matches!(
                Message::decode(&padded),
                Err(WireError::TrailingBytes { .. })
            ),
            "seed {seed}"
        );
    }
}

/// Packed f32 regions survive the wire bit for bit — including
/// denormals, infinities, and negative zero. This is the property the
/// packed parity grid leans on: re-framing must never touch the bits.
#[test]
fn packed_f32_regions_roundtrip_bitwise() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(0xF32 + seed);
        let width = 1 + rng.below(8) as u32;
        let parts = random_parts(&mut rng, width);
        let msg = Message::PackedDispatch(PackedGroup::pack(
            7,
            GroupPass::Forward,
            0,
            width,
            false,
            parts.iter().map(|(e, v)| (*e, v.as_slice())),
        ));
        let decoded = Message::decode(&msg.encode()).unwrap();
        let Message::PackedDispatch(group) = decoded else {
            panic!("seed {seed}: wrong message kind");
        };
        let PackedData::F32(region) = &group.data else {
            panic!("seed {seed}: wrong encoding");
        };
        let original: Vec<u32> = parts
            .iter()
            .flat_map(|(_, v)| v.iter().map(|x| x.to_bits()))
            .collect();
        let survived: Vec<u32> = region.iter().map(|x| x.to_bits()).collect();
        assert_eq!(original, survived, "seed {seed}");
    }
}

/// Int8 quantization reconstructs every value within the scheme's bound:
/// per-row scale is `amax / 127`, codes round to nearest, so the error
/// is at most half a quantization step (`amax / 254`).
#[test]
fn int8_reconstruction_error_is_bounded() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x18 + seed);
        let width = 1 + rng.below(12) as u32;
        let rows = 1 + rng.below(8);
        let vals: Vec<f32> = (0..rows * width as usize)
            .map(|_| rng.uniform(-50.0, 50.0))
            .collect();
        let group = PackedGroup::pack(
            0,
            GroupPass::Forward,
            0,
            width,
            true,
            std::iter::once((0u32, vals.as_slice())),
        );
        let Message::PackedDispatch(group) =
            Message::decode(&Message::PackedDispatch(group).encode()).unwrap()
        else {
            panic!("seed {seed}: wrong message kind");
        };
        let mut rebuilt = Vec::new();
        group
            .data
            .unpack_rows(width as usize, 0, rows, &mut rebuilt);
        assert_eq!(rebuilt.len(), vals.len(), "seed {seed}");
        for r in 0..rows {
            let lo = r * width as usize;
            let hi = lo + width as usize;
            let amax = vals[lo..hi].iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = amax / 254.0 + 1e-6;
            for (a, b) in vals[lo..hi].iter().zip(&rebuilt[lo..hi]) {
                assert!(
                    (a - b).abs() <= bound,
                    "seed {seed}: |{a} - {b}| > {bound} (amax {amax})"
                );
            }
        }
    }
}

/// Span tables that overlap, leave gaps, or declare more rows than the
/// frame holds are rejected during the header scan — before the data
/// region (whose size the spans imply) is allocated.
#[test]
fn bad_span_tables_are_rejected_before_allocation() {
    use vela::runtime::wire::ByteWriter;
    // A syntactically valid packed-dispatch prefix: tag, block, pass,
    // chunk, f32 encoding, the given width.
    let header = |width: u32, count: u16| {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(14); // PackedDispatch tag
        w.put_u32(3);
        w.put_u8(0); // forward
        w.put_u32(0);
        w.put_u8(0); // f32 encoding
        w.put_u32(width);
        w.put_u16(count);
        w
    };
    let span = |w: &mut ByteWriter, expert: u16, offset: u32, rows: u16| {
        w.put_u16(expert);
        w.put_u32(offset);
        w.put_u16(rows);
    };

    // Overlapping spans: the second one starts inside the first.
    let mut w = header(4, 2);
    span(&mut w, 0, 0, 2);
    span(&mut w, 1, 1, 2);
    assert!(matches!(
        Message::decode(&w.into_vec()),
        Err(WireError::BadSpan { .. })
    ));

    // Gapped spans: the second one skips a row.
    let mut w = header(4, 2);
    span(&mut w, 0, 0, 2);
    span(&mut w, 1, 3, 1);
    assert!(matches!(
        Message::decode(&w.into_vec()),
        Err(WireError::BadSpan { .. })
    ));

    // A span table longer than the frame: rejected before the span
    // vector is sized from the count field.
    let w = header(4, u16::MAX);
    assert!(matches!(
        Message::decode(&w.into_vec()),
        Err(WireError::BadLength { .. })
    ));

    // Dense spans whose implied f32 region dwarfs the frame: rejected
    // before the region is allocated, even though every span is valid.
    let mut w = header(u32::MAX, 1);
    span(&mut w, 0, 0, u16::MAX);
    assert!(matches!(
        Message::decode(&w.into_vec()),
        Err(WireError::BadLength { .. })
    ));

    // Same guard on the result path: a reply declaring a huge row count
    // with no region behind it.
    let mut w = ByteWriter::with_capacity(32);
    w.put_u8(15); // PackedResult tag
    w.put_u32(3);
    w.put_u8(0);
    w.put_u32(0);
    w.put_u8(0); // f32 encoding
    w.put_u32(u32::MAX); // width
    w.put_u16(1); // items
    w.put_u32(u32::MAX); // rows
    assert!(matches!(
        Message::decode(&w.into_vec()),
        Err(WireError::BadLength { .. })
    ));
}

/// Length fields that promise more data than the frame holds must be
/// rejected *before* any allocation sized by them.
#[test]
fn implausible_length_fields_do_not_allocate() {
    use vela::runtime::wire::ByteWriter;
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x1E46 + seed);
        // An ExpertState header declaring up to u64::MAX payload bytes.
        let mut w = ByteWriter::with_capacity(32);
        w.put_u8(10); // ExpertState tag
        w.put_u32(rng.below(64) as u32);
        w.put_u32(rng.below(8) as u32);
        w.put_u64(u64::MAX - rng.below(1 << 30) as u64);
        let frame = w.into_vec();
        assert!(Message::decode(&frame).is_err(), "seed {seed}");

        // A Real payload declaring a huge rows × cols grid.
        let mut w = ByteWriter::with_capacity(32);
        w.put_u8(2); // TokenBatch tag
        w.put_u32(0);
        w.put_u32(0);
        w.put_u8(0); // Payload::Real tag
        w.put_u32(u32::MAX - rng.below(1 << 16) as u32);
        w.put_u32(u32::MAX - rng.below(1 << 16) as u32);
        let frame = w.into_vec();
        assert!(Message::decode(&frame).is_err(), "seed {seed}");

        // A group frame declaring more items than the frame could hold.
        let mut w = ByteWriter::with_capacity(32);
        w.put_u8(12 + rng.below(2) as u8); // DispatchGroup / ResultGroup tag
        w.put_u32(0);
        w.put_u8(rng.below(2) as u8); // pass
        w.put_u32(rng.below(8) as u32); // chunk
        w.put_u32(u32::MAX - rng.below(1 << 16) as u32);
        let frame = w.into_vec();
        assert!(
            matches!(Message::decode(&frame), Err(WireError::BadLength { .. })),
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------------
// Chunked expert transfers: the background-migration codec. Frames are
// bounded, reassembly is bitwise, and malformed span tables (gaps,
// overlaps, drifting totals, overruns) die before a byte is copied.
// ---------------------------------------------------------------------------

#[test]
fn expert_chunks_reassemble_bitwise() {
    use vela::runtime::{chunk_expert_state, ChunkAssembler, EXPERT_CHUNK_BYTES};
    let mut rng = DetRng::new(0xC4A);
    // Edge sizes first, then random blobs straddling several frames.
    let mut sizes = vec![
        0,
        1,
        EXPERT_CHUNK_BYTES - 1,
        EXPERT_CHUNK_BYTES,
        EXPERT_CHUNK_BYTES + 1,
        3 * EXPERT_CHUNK_BYTES + 7,
    ];
    sizes.extend((0..20).map(|_| rng.below(4 * EXPERT_CHUNK_BYTES)));
    for size in sizes {
        let blob: Vec<u8> = (0..size).map(|_| rng.next_u64() as u8).collect();
        let frames = chunk_expert_state(3, 7, &blob);
        assert!(!frames.is_empty(), "even empty blobs announce their total");
        let mut asm = ChunkAssembler::new(3, 7);
        for frame in frames {
            // Every frame survives the wire and stays bounded.
            let decoded = Message::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, frame);
            match decoded {
                Message::ExpertChunk {
                    offset,
                    total,
                    data,
                    ..
                } => {
                    assert!(data.len() <= EXPERT_CHUNK_BYTES, "frame exceeds bound");
                    assert_eq!(total, blob.len() as u64);
                    asm.accept(offset, total, &data).unwrap();
                }
                other => panic!("chunking produced {other:?}"),
            }
        }
        assert!(asm.is_complete());
        assert_eq!(asm.into_bytes(), blob, "size {size}");
    }
}

#[test]
fn chunk_assembler_rejects_gaps_overlaps_and_total_drift() {
    use vela::runtime::{chunk_expert_state, ChunkAssembler};
    let mut rng = DetRng::new(0xC4B);
    let blob: Vec<u8> = (0..1000).map(|_| rng.next_u64() as u8).collect();
    let chunk = |m: &Message| match m {
        Message::ExpertChunk {
            offset,
            total,
            data,
            ..
        } => (*offset, *total, data.clone()),
        other => panic!("{other:?}"),
    };
    // Hand-rolled 250-byte frames so there are several to misorder.
    let frames: Vec<(u64, u64, Vec<u8>)> = blob
        .chunks(250)
        .enumerate()
        .map(|(i, c)| (i as u64 * 250, blob.len() as u64, c.to_vec()))
        .collect();

    // A gap: frame 1 skipped.
    let mut asm = ChunkAssembler::new(0, 0);
    asm.accept(frames[0].0, frames[0].1, &frames[0].2).unwrap();
    assert!(matches!(
        asm.accept(frames[2].0, frames[2].1, &frames[2].2),
        Err(WireError::BadSpan { .. })
    ));

    // An overlap: frame 0 delivered twice.
    let mut asm = ChunkAssembler::new(0, 0);
    asm.accept(frames[0].0, frames[0].1, &frames[0].2).unwrap();
    assert!(matches!(
        asm.accept(frames[0].0, frames[0].1, &frames[0].2),
        Err(WireError::BadSpan { .. })
    ));

    // A drifting total: the second frame disagrees about the blob size.
    let mut asm = ChunkAssembler::new(0, 0);
    asm.accept(frames[0].0, frames[0].1, &frames[0].2).unwrap();
    assert!(matches!(
        asm.accept(frames[1].0, frames[1].1 + 1, &frames[1].2),
        Err(WireError::BadSpan { .. })
    ));

    // An overrun: more data than the declared total.
    let mut asm = ChunkAssembler::new(0, 0);
    assert!(matches!(
        asm.accept(0, 10, &blob[..11]),
        Err(WireError::BadLength { .. })
    ));

    // And the happy path still assembles after a rejected frame: the
    // assembler state is untouched by errors.
    let mut asm = ChunkAssembler::new(0, 0);
    for f in chunk_expert_state(0, 0, &blob) {
        let (o, t, d) = chunk(&f);
        let _ = asm.accept(o + 1, t, &d); // rejected, no effect
        asm.accept(o, t, &d).unwrap();
    }
    assert_eq!(asm.into_bytes(), blob);
}

#[test]
fn implausible_chunk_lengths_do_not_allocate() {
    use vela::runtime::wire::ByteWriter;
    let mut rng = DetRng::new(0xC4C);
    for seed in 0..CASES {
        // A chunk frame whose length field promises far more data than
        // the frame carries: rejected by the remaining-bytes check, and
        // no buffer of the declared size is ever allocated.
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(22); // ExpertChunk tag
        w.put_u32(rng.below(8) as u32);
        w.put_u32(rng.below(8) as u32);
        w.put_u64(0);
        w.put_u64(u64::MAX - rng.below(1 << 20) as u64); // total
        w.put_u64(u64::MAX - rng.below(1 << 20) as u64); // len >> frame
        w.put_slice(&[0u8; 16]);
        let frame = w.into_vec();
        assert!(
            matches!(Message::decode(&frame), Err(WireError::BadLength { .. })),
            "seed {seed}"
        );

        // A chunk whose span runs past its own declared total.
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(22);
        w.put_u32(0);
        w.put_u32(0);
        w.put_u64(100 + rng.below(100) as u64); // offset
        w.put_u64(50); // total < offset
        w.put_u64(8);
        w.put_slice(&[0u8; 8]);
        let frame = w.into_vec();
        assert!(
            matches!(Message::decode(&frame), Err(WireError::BadLength { .. })),
            "seed {seed}"
        );
    }
}

//! Property tests for the wire codec (seeded, dependency-free).
//!
//! The TCP transport feeds [`Message::decode`] whatever arrives on a
//! socket, so the codec is a trust boundary: random messages must survive
//! a round trip bit-for-bit, and truncated or corrupted frames must come
//! back as [`WireError`]s — never a panic, never a bogus allocation.

use vela::prelude::*;
use vela::runtime::message::{GroupItem, GroupPass, Message, Payload};
use vela::runtime::wire::WireError;

const CASES: u64 = 200;

fn random_pass(rng: &mut DetRng) -> GroupPass {
    if rng.below(2) == 0 {
        GroupPass::Forward
    } else {
        GroupPass::Backward
    }
}

fn random_items(rng: &mut DetRng) -> Vec<GroupItem> {
    (0..rng.below(6))
        .map(|_| GroupItem {
            expert: rng.below(1 << 8) as u32,
            payload: random_payload(rng),
        })
        .collect()
}

fn random_payload(rng: &mut DetRng) -> Payload {
    if rng.below(2) == 0 {
        let rows = 1 + rng.below(12);
        let cols = 1 + rng.below(12);
        Payload::from_tensor(&Tensor::uniform((rows, cols), -100.0, 100.0, rng))
    } else {
        Payload::Virtual {
            rows: 1 + rng.below(1 << 20) as u32,
            bytes_per_token: 1 + rng.below(1 << 14) as u32,
        }
    }
}

fn random_message(rng: &mut DetRng) -> Message {
    let block = rng.below(1 << 10) as u32;
    let expert = rng.below(1 << 8) as u32;
    match rng.below(13) {
        0 => Message::StepBegin {
            step: rng.below(usize::MAX / 2) as u64,
        },
        1 => Message::TokenBatch {
            block,
            expert,
            payload: random_payload(rng),
        },
        2 => Message::ExpertResult {
            block,
            expert,
            payload: random_payload(rng),
        },
        3 => Message::GradBatch {
            block,
            expert,
            payload: random_payload(rng),
        },
        4 => Message::GradResult {
            block,
            expert,
            payload: random_payload(rng),
        },
        5 => Message::StepEnd,
        6 => Message::StepDone,
        7 => Message::Shutdown,
        8 => Message::FetchExpert { block, expert },
        9 => Message::ExpertState {
            block,
            expert,
            data: (0..rng.below(256)).map(|_| rng.below(256) as u8).collect(),
        },
        10 => Message::InstallDone { block, expert },
        11 => Message::DispatchGroup {
            block,
            pass: random_pass(rng),
            chunk: rng.below(1 << 8) as u32,
            items: random_items(rng),
        },
        _ => Message::ResultGroup {
            block,
            pass: random_pass(rng),
            chunk: rng.below(1 << 8) as u32,
            items: random_items(rng),
        },
    }
}

/// Every message kind round-trips bit-for-bit.
#[test]
fn random_messages_roundtrip() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let msg = random_message(&mut rng);
        let frame = msg.encode();
        assert_eq!(Message::decode(&frame).unwrap(), msg, "seed {seed}");
    }
}

/// Any strict prefix of a valid frame is an error — the codec's length
/// and trailing-byte checks make partial reads impossible to mistake for
/// complete messages.
#[test]
fn truncated_frames_are_errors_not_panics() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x7C0 + seed);
        let frame = random_message(&mut rng).encode();
        // The empty prefix plus a few random cuts.
        let mut cuts = vec![0, frame.len() - 1];
        for _ in 0..4 {
            cuts.push(rng.below(frame.len()));
        }
        for cut in cuts {
            assert!(
                Message::decode(&frame[..cut]).is_err(),
                "seed {seed}: {cut}-byte prefix of a {}-byte frame decoded",
                frame.len()
            );
        }
    }
}

/// Byte flips never panic: they decode to some message or a clean error.
#[test]
fn corrupted_frames_never_panic() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(0xBAD + seed);
        let mut frame = random_message(&mut rng).encode();
        for _ in 0..8 {
            let at = rng.below(frame.len());
            frame[at] ^= 1 << rng.below(8);
            let _ = Message::decode(&frame);
        }
        // Appended garbage is caught by the trailing-bytes check.
        let mut padded = random_message(&mut rng).encode();
        padded.push(rng.below(256) as u8);
        assert!(
            matches!(
                Message::decode(&padded),
                Err(WireError::TrailingBytes { .. })
            ),
            "seed {seed}"
        );
    }
}

/// Length fields that promise more data than the frame holds must be
/// rejected *before* any allocation sized by them.
#[test]
fn implausible_length_fields_do_not_allocate() {
    use vela::runtime::wire::ByteWriter;
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x1E46 + seed);
        // An ExpertState header declaring up to u64::MAX payload bytes.
        let mut w = ByteWriter::with_capacity(32);
        w.put_u8(10); // ExpertState tag
        w.put_u32(rng.below(64) as u32);
        w.put_u32(rng.below(8) as u32);
        w.put_u64(u64::MAX - rng.below(1 << 30) as u64);
        let frame = w.into_vec();
        assert!(Message::decode(&frame).is_err(), "seed {seed}");

        // A Real payload declaring a huge rows × cols grid.
        let mut w = ByteWriter::with_capacity(32);
        w.put_u8(2); // TokenBatch tag
        w.put_u32(0);
        w.put_u32(0);
        w.put_u8(0); // Payload::Real tag
        w.put_u32(u32::MAX - rng.below(1 << 16) as u32);
        w.put_u32(u32::MAX - rng.below(1 << 16) as u32);
        let frame = w.into_vec();
        assert!(Message::decode(&frame).is_err(), "seed {seed}");

        // A group frame declaring more items than the frame could hold.
        let mut w = ByteWriter::with_capacity(32);
        w.put_u8(12 + rng.below(2) as u8); // DispatchGroup / ResultGroup tag
        w.put_u32(0);
        w.put_u8(rng.below(2) as u8); // pass
        w.put_u32(rng.below(8) as u32); // chunk
        w.put_u32(u32::MAX - rng.below(1 << 16) as u32);
        let frame = w.into_vec();
        assert!(
            matches!(Message::decode(&frame), Err(WireError::BadLength { .. })),
            "seed {seed}"
        );
    }
}

//! Live expert migration: the runtime-flexibility feature VELA's framework
//! design enables (§IV-A: users can "manipulate expert distribution at
//! runtime").
//!
//! These tests verify migration is *semantically invisible* — the model
//! computes identical results before and after experts move — and that
//! moved parameter bytes are accounted as real traffic. The parity arm at
//! the bottom proves the background (overlap) migration lane is bitwise
//! identical to stop-the-world migration on every transport.

use vela::model::finetune::prepare_for_finetune;
use vela::prelude::*;

fn launch_on(
    transport: TransportConfig,
    placement: Placement,
) -> (RealRuntime, ModelConfig, TokenDataset) {
    let mut cfg = ModelConfig::test_small();
    cfg.vocab = CharTokenizer::new().vocab_size();
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 20,
            batch_size: 4,
            corpus_chars: 20_000,
            seed: 91,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(2),
    );
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let runtime = RealRuntime::launch_with(
        transport,
        model,
        experts,
        placement,
        topology,
        DeviceId(0),
        workers,
        AdamWConfig::default(),
    );
    let tok = CharTokenizer::new();
    let data = TokenDataset::from_text(&tok, &Corpus::TinyShakespeare.generate(20_000, 5));
    (runtime, cfg, data)
}

fn launch(placement: Placement) -> (RealRuntime, ModelConfig, TokenDataset) {
    launch_on(TransportConfig::from_env(), placement)
}

fn seq_placement(cfg: &ModelConfig) -> Placement {
    Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    )
}

/// Deterministic shuffle of every expert; identical across arms because
/// both start from the same placement and the rng is seeded.
fn scatter_target(rt: &RealRuntime, cfg: &ModelConfig) -> Placement {
    let mut rng = DetRng::new(3);
    let mut target = rt.placement().primaries();
    for l in 0..cfg.blocks {
        for e in 0..cfg.experts {
            target.set_worker(l, e, rng.below(6));
        }
    }
    target
}

#[test]
fn migration_preserves_computation_exactly() {
    let (mut rt, cfg, data) = launch(seq_placement(&ModelConfig::test_small()));
    let batch = data.sample_batch(2, cfg.seq_len, &mut DetRng::new(1));

    let loss_before = rt.evaluate(
        &batch.inputs,
        &batch.targets,
        batch.batch_size,
        batch.seq_len,
    );

    // Scatter every expert somewhere else.
    let target = scatter_target(&rt, &cfg);
    let handle = rt.apply_placement(&target).expect("migration failed");
    assert!(handle.moved > 0, "the shuffle should move something");
    assert!(handle.bytes > 0, "moved experts carry parameter bytes");
    assert_eq!(
        handle.in_flight, 0,
        "sync migration completes before returning"
    );
    assert_eq!(rt.placement().primaries(), target);

    let loss_after = rt.evaluate(
        &batch.inputs,
        &batch.targets,
        batch.batch_size,
        batch.seq_len,
    );
    assert_eq!(
        loss_before, loss_after,
        "migration must be computation-invisible"
    );
    rt.shutdown();
}

#[test]
fn training_continues_after_migration() {
    let (mut rt, cfg, data) = launch(seq_placement(&ModelConfig::test_small()));
    let mut rng = DetRng::new(4);
    let batch = data.sample_batch(2, cfg.seq_len, &mut rng);
    let first = rt
        .train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
        )
        .expect("transport failed mid-step")
        .loss
        .unwrap();

    // Consolidate everything onto worker 3 mid-run.
    let target = Placement::new(vec![vec![3; cfg.experts]; cfg.blocks], 6);
    rt.apply_placement(&target).expect("migration failed");

    let mut last = first;
    for _ in 0..5 {
        let b = data.sample_batch(2, cfg.seq_len, &mut rng);
        last = rt
            .train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len)
            .expect("transport failed mid-step")
            .loss
            .unwrap();
        assert!(last.is_finite());
    }
    // All experts now on one worker: dispatch traffic goes to device 3.
    let b = data.sample_batch(2, cfg.seq_len, &mut rng);
    let m = rt
        .train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len)
        .expect("transport failed mid-step");
    assert!(
        m.traffic.external_total() > 0,
        "device 3 is off the master node"
    );
    let _ = last;
    let (_, merged) = rt.shutdown();
    assert_eq!(merged.present_count(), cfg.blocks * cfg.experts);
}

#[test]
fn apply_placement_is_idempotent() {
    let (mut rt, _, _) = launch(seq_placement(&ModelConfig::test_small()));
    let same = rt.placement().primaries();
    let handle = rt.apply_placement(&same).expect("migration failed");
    assert_eq!((handle.moved, handle.bytes), (0, 0));
    assert_eq!(handle.traffic.total_bytes, 0);
    rt.shutdown();
}

#[test]
fn migration_bytes_are_accounted_as_traffic() {
    let (mut rt, _cfg, _data) = launch(seq_placement(&ModelConfig::test_small()));
    // Move one expert from worker 1 (node 0) to worker 2 (node 1): the
    // serialized parameters cross a node boundary (master -> worker 2),
    // while the fetch leg (worker 1 -> master) stays on-node.
    let mut target = rt.placement().primaries();
    target.set_worker(0, 1, 2);
    let handle = rt.apply_placement(&target).expect("migration failed");
    let (moved, bytes, traffic) = (handle.moved, handle.bytes, handle.traffic);
    assert_eq!(moved, 1);
    assert!(
        traffic.total_bytes >= 2 * bytes,
        "parameters move twice (via the master): {} vs {bytes}",
        traffic.total_bytes
    );
    assert!(
        traffic.external_total() >= bytes,
        "the install leg is cross-node"
    );
    assert!(
        traffic.internal_bytes >= bytes,
        "the fetch leg is intra-node"
    );
    assert!(
        traffic.migration_bytes >= 2 * bytes,
        "both legs land in the migration bucket"
    );
    rt.shutdown();
}

#[test]
fn dynamic_replanning_improves_traffic_mid_run() {
    // Start with a deliberately bad placement, measure routing, re-plan
    // with the LP, and verify per-step external traffic drops.
    let cfg = ModelConfig::test_small();
    // Everything on remote node 2 (workers 4,5): worst case.
    let bad = Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| 4 + (e % 2)).collect())
            .collect(),
        6,
    );
    let (mut rt, cfg, data) = launch(bad);
    let mut rng = DetRng::new(7);
    let batch = data.sample_batch(4, cfg.seq_len, &mut rng);
    let before = rt
        .train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
        )
        .expect("transport failed mid-step")
        .traffic
        .external_total();

    // Measure the live routing and re-plan.
    let freqs: Vec<Vec<f64>> = rt
        .model()
        .routing_snapshot()
        .iter()
        .map(|i| i.frequencies().iter().map(|&f| f as f64).collect())
        .collect();
    let profile = LocalityProfile::from_frequencies("live", freqs);
    let problem = PlacementProblem::new(
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        profile.to_matrix(),
        (4 * cfg.seq_len * cfg.top_k) as f64,
        (cfg.dim * 4) as u64,
        PlacementProblem::even_capacities(cfg.blocks, cfg.experts, 6, 2),
    );
    let better = Strategy::Vela.place(&problem);
    let handle = rt.apply_placement(&better).expect("migration failed");
    assert!(handle.traffic.total_bytes > 0);
    let b2 = data.sample_batch(4, cfg.seq_len, &mut rng);
    rt.train_step(&b2.inputs, &b2.targets, b2.batch_size, b2.seq_len)
        .expect("transport failed mid-step");

    let b3 = data.sample_batch(4, cfg.seq_len, &mut rng);
    let after = rt
        .train_step(&b3.inputs, &b3.targets, b3.batch_size, b3.seq_len)
        .expect("transport failed mid-step")
        .traffic
        .external_total();
    assert!(
        after < before / 2,
        "re-planning should slash external traffic: {before} -> {after}"
    );
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Overlap ≡ sync parity: the background migration lane must produce the
// same training run, bit for bit, as stopping the world at the cutover
// boundary — and must move exactly the same migration-bucket bytes.
// ---------------------------------------------------------------------------

/// Steps taken before the placement change is requested.
const PRE_STEPS: usize = 2;
/// Steps compared after the cutover commits.
const POST_STEPS: usize = 3;
/// Safety cap on the overlap window (lanes that never install are a bug).
const MAX_WINDOW: usize = 32;

struct ArmResult {
    /// Loss of every training step, in order.
    losses: Vec<f32>,
    /// Full metrics of the `POST_STEPS` steps after the cutover.
    post: Vec<StepMetrics>,
    /// Migration-bucket bytes summed over the apply window and every
    /// step window (overlap mode spreads them across steps).
    migration_bytes: u64,
    /// The 1-based step index whose boundary committed the move.
    cutover: u64,
    /// Loss of a fixed eval batch after the run: final-weight parity.
    final_eval: f32,
}

/// Runs one arm of the parity experiment. `cutover_at: None` runs the
/// overlap arm (apply early, let lanes stream, observe the boundary);
/// `Some(t)` runs the sync arm, replaying the stop-the-world migration
/// at the boundary the overlap arm actually cut over at.
fn run_arm(transport: TransportConfig, cutover_at: Option<u64>) -> ArmResult {
    let (mut rt, cfg, data) = launch_on(transport, seq_placement(&ModelConfig::test_small()));
    if cutover_at.is_none() {
        rt.set_migration(MigrationMode::Overlap);
    }
    let target = scatter_target(&rt, &cfg);
    let mut rng = DetRng::new(11);
    let mut losses = Vec::new();
    let mut migration_bytes = 0u64;

    let step = |rt: &mut RealRuntime, rng: &mut DetRng| -> StepMetrics {
        let b = data.sample_batch(2, cfg.seq_len, rng);
        rt.train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len)
            .expect("transport failed mid-step")
    };

    for _ in 0..PRE_STEPS {
        let m = step(&mut rt, &mut rng);
        migration_bytes += m.traffic.migration_bytes;
        losses.push(m.loss.unwrap());
    }

    let cutover = match cutover_at {
        None => {
            // Overlap arm: apply returns immediately; lanes stream and
            // commit under the following steps.
            let handle = rt.apply_placement(&target).expect("migration failed");
            assert!(handle.moved > 0, "the shuffle should move something");
            assert!(
                handle.in_flight > 0,
                "overlap migration must not block in apply_placement"
            );
            migration_bytes += handle.traffic.migration_bytes;
            let mut window = 0;
            while rt.migrations_in_flight() > 0 {
                assert!(window < MAX_WINDOW, "lanes never finished installing");
                let m = step(&mut rt, &mut rng);
                migration_bytes += m.traffic.migration_bytes;
                losses.push(m.loss.unwrap());
                window += 1;
            }
            rt.last_cutover_step()
        }
        Some(t) => {
            // Sync arm: train up to the observed boundary, then stop the
            // world and move everything at once.
            while (losses.len() as u64) < t {
                let m = step(&mut rt, &mut rng);
                migration_bytes += m.traffic.migration_bytes;
                losses.push(m.loss.unwrap());
            }
            let handle = rt.apply_placement(&target).expect("migration failed");
            assert!(handle.moved > 0, "the shuffle should move something");
            assert_eq!(handle.in_flight, 0, "sync migration blocks to completion");
            migration_bytes += handle.traffic.migration_bytes;
            t
        }
    };
    assert_eq!(rt.placement().primaries(), target);

    let mut post = Vec::new();
    for _ in 0..POST_STEPS {
        let m = step(&mut rt, &mut rng);
        migration_bytes += m.traffic.migration_bytes;
        losses.push(m.loss.unwrap());
        post.push(m);
    }

    let eval_batch = data.sample_batch(2, cfg.seq_len, &mut DetRng::new(13));
    let final_eval = rt.evaluate(
        &eval_batch.inputs,
        &eval_batch.targets,
        eval_batch.batch_size,
        eval_batch.seq_len,
    );
    rt.shutdown();
    ArmResult {
        losses,
        post,
        migration_bytes,
        cutover,
        final_eval,
    }
}

fn overlap_matches_sync_on(transport: fn() -> TransportConfig) {
    let overlap = run_arm(transport(), None);
    assert!(
        overlap.cutover > PRE_STEPS as u64,
        "cutover must land on a later step boundary, got {}",
        overlap.cutover
    );
    let sync = run_arm(transport(), Some(overlap.cutover));

    assert_eq!(
        overlap.losses.len(),
        sync.losses.len(),
        "arms must train the same number of steps"
    );
    for (i, (a, b)) in overlap.losses.iter().zip(&sync.losses).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "loss diverged at step {} ({a} vs {b}): the lockstep window leaked",
            i + 1
        );
    }
    assert_eq!(
        overlap.post, sync.post,
        "post-cutover step metrics must be bitwise identical"
    );
    assert_eq!(
        overlap.migration_bytes, sync.migration_bytes,
        "overlap must move exactly the sync ledger's migration bytes"
    );
    assert_eq!(
        overlap.final_eval.to_bits(),
        sync.final_eval.to_bits(),
        "final weights diverged ({} vs {})",
        overlap.final_eval,
        sync.final_eval
    );
}

#[test]
fn overlap_migration_matches_sync_over_channel() {
    overlap_matches_sync_on(TransportConfig::channel);
}

#[test]
fn overlap_migration_matches_sync_over_tcp_threads() {
    overlap_matches_sync_on(TransportConfig::tcp_threads);
}

#[test]
fn overlap_migration_matches_sync_over_tcp_processes() {
    overlap_matches_sync_on(TransportConfig::tcp_processes);
}

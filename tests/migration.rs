//! Live expert migration: the runtime-flexibility feature VELA's framework
//! design enables (§IV-A: users can "manipulate expert distribution at
//! runtime").
//!
//! These tests verify migration is *semantically invisible* — the model
//! computes identical results before and after experts move — and that
//! moved parameter bytes are accounted as real traffic.

use vela::model::finetune::prepare_for_finetune;
use vela::prelude::*;

fn launch(placement: Placement) -> (RealRuntime, ModelConfig, TokenDataset) {
    let mut cfg = ModelConfig::test_small();
    cfg.vocab = CharTokenizer::new().vocab_size();
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 20,
            batch_size: 4,
            corpus_chars: 20_000,
            seed: 91,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(2),
    );
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let runtime = RealRuntime::launch(
        model,
        experts,
        placement,
        topology,
        DeviceId(0),
        workers,
        AdamWConfig::default(),
    );
    let tok = CharTokenizer::new();
    let data = TokenDataset::from_text(&tok, &Corpus::TinyShakespeare.generate(20_000, 5));
    (runtime, cfg, data)
}

fn seq_placement(cfg: &ModelConfig) -> Placement {
    Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    )
}

#[test]
fn migration_preserves_computation_exactly() {
    let (mut rt, cfg, data) = launch(seq_placement(&ModelConfig::test_small()));
    let batch = data.sample_batch(2, cfg.seq_len, &mut DetRng::new(1));

    let loss_before = rt.evaluate(
        &batch.inputs,
        &batch.targets,
        batch.batch_size,
        batch.seq_len,
    );

    // Scatter every expert somewhere else.
    let mut rng = DetRng::new(3);
    let mut target = rt.placement().primaries();
    for l in 0..cfg.blocks {
        for e in 0..cfg.experts {
            target.set_worker(l, e, rng.below(6));
        }
    }
    let (moved, bytes, _) = rt.apply_placement(&target);
    assert!(moved > 0, "the shuffle should move something");
    assert!(bytes > 0, "moved experts carry parameter bytes");
    assert_eq!(rt.placement().primaries(), target);

    let loss_after = rt.evaluate(
        &batch.inputs,
        &batch.targets,
        batch.batch_size,
        batch.seq_len,
    );
    assert_eq!(
        loss_before, loss_after,
        "migration must be computation-invisible"
    );
    rt.shutdown();
}

#[test]
fn training_continues_after_migration() {
    let (mut rt, cfg, data) = launch(seq_placement(&ModelConfig::test_small()));
    let mut rng = DetRng::new(4);
    let batch = data.sample_batch(2, cfg.seq_len, &mut rng);
    let first = rt
        .train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
        )
        .loss
        .unwrap();

    // Consolidate everything onto worker 3 mid-run.
    let target = Placement::new(vec![vec![3; cfg.experts]; cfg.blocks], 6);
    rt.apply_placement(&target);

    let mut last = first;
    for _ in 0..5 {
        let b = data.sample_batch(2, cfg.seq_len, &mut rng);
        last = rt
            .train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len)
            .loss
            .unwrap();
        assert!(last.is_finite());
    }
    // All experts now on one worker: dispatch traffic goes to device 3.
    let b = data.sample_batch(2, cfg.seq_len, &mut rng);
    let m = rt.train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len);
    assert!(
        m.traffic.external_total() > 0,
        "device 3 is off the master node"
    );
    let _ = last;
    let (_, merged) = rt.shutdown();
    assert_eq!(merged.present_count(), cfg.blocks * cfg.experts);
}

#[test]
fn apply_placement_is_idempotent() {
    let (mut rt, _, _) = launch(seq_placement(&ModelConfig::test_small()));
    let same = rt.placement().primaries();
    let (moved, bytes, traffic) = rt.apply_placement(&same);
    assert_eq!((moved, bytes), (0, 0));
    assert_eq!(traffic.total_bytes, 0);
    rt.shutdown();
}

#[test]
fn migration_bytes_are_accounted_as_traffic() {
    let (mut rt, _cfg, _data) = launch(seq_placement(&ModelConfig::test_small()));
    // Move one expert from worker 1 (node 0) to worker 2 (node 1): the
    // serialized parameters cross a node boundary (master -> worker 2),
    // while the fetch leg (worker 1 -> master) stays on-node.
    let mut target = rt.placement().primaries();
    target.set_worker(0, 1, 2);
    let (moved, bytes, traffic) = rt.apply_placement(&target);
    assert_eq!(moved, 1);
    assert!(
        traffic.total_bytes >= 2 * bytes,
        "parameters move twice (via the master): {} vs {bytes}",
        traffic.total_bytes
    );
    assert!(
        traffic.external_total() >= bytes,
        "the install leg is cross-node"
    );
    assert!(
        traffic.internal_bytes >= bytes,
        "the fetch leg is intra-node"
    );
    rt.shutdown();
}

#[test]
fn dynamic_replanning_improves_traffic_mid_run() {
    // Start with a deliberately bad placement, measure routing, re-plan
    // with the LP, and verify per-step external traffic drops.
    let cfg = ModelConfig::test_small();
    // Everything on remote node 2 (workers 4,5): worst case.
    let bad = Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| 4 + (e % 2)).collect())
            .collect(),
        6,
    );
    let (mut rt, cfg, data) = launch(bad);
    let mut rng = DetRng::new(7);
    let batch = data.sample_batch(4, cfg.seq_len, &mut rng);
    let before = rt
        .train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
        )
        .traffic
        .external_total();

    // Measure the live routing and re-plan.
    let freqs: Vec<Vec<f64>> = rt
        .model()
        .routing_snapshot()
        .iter()
        .map(|i| i.frequencies().iter().map(|&f| f as f64).collect())
        .collect();
    let profile = LocalityProfile::from_frequencies("live", freqs);
    let problem = PlacementProblem::new(
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        profile.to_matrix(),
        (4 * cfg.seq_len * cfg.top_k) as f64,
        (cfg.dim * 4) as u64,
        PlacementProblem::even_capacities(cfg.blocks, cfg.experts, 6, 2),
    );
    let better = Strategy::Vela.place(&problem);
    let (_, _, migration_traffic) = rt.apply_placement(&better);
    assert!(migration_traffic.total_bytes > 0);
    let b2 = data.sample_batch(4, cfg.seq_len, &mut rng);
    rt.train_step(&b2.inputs, &b2.targets, b2.batch_size, b2.seq_len);

    let b3 = data.sample_batch(4, cfg.seq_len, &mut rng);
    let after = rt
        .train_step(&b3.inputs, &b3.targets, b3.batch_size, b3.seq_len)
        .traffic
        .external_total();
    assert!(
        after < before / 2,
        "re-planning should slash external traffic: {before} -> {after}"
    );
    rt.shutdown();
}

//! Cost-aware expert replication, end to end on the real runtime.
//!
//! Replication breaks the single-owner assumption — an expert may live on
//! several workers, token batches go to the least-loaded live replica —
//! but it must be *computation-transparent*: replicas start bit-identical
//! (checkpoint clones at launch), exactly one replica serves an expert
//! per step, and the post-backward gradient sync copies the serving
//! replica's gradients into every peer before the workers' optimizers
//! run. A replicated session therefore trains the mathematically
//! identical model, loss for loss, while the byte ledger shows the sync
//! traffic it paid for the privilege.

use vela::model::finetune::prepare_for_finetune;
use vela::prelude::*;

fn launch(placement: impl Into<ReplicatedPlacement>) -> (RealRuntime, ModelConfig, TokenDataset) {
    let mut cfg = ModelConfig::test_small();
    cfg.vocab = CharTokenizer::new().vocab_size();
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 20,
            batch_size: 4,
            corpus_chars: 20_000,
            seed: 91,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(2),
    );
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let runtime = RealRuntime::launch(
        model,
        experts,
        placement,
        topology,
        DeviceId(0),
        workers,
        AdamWConfig::default(),
    );
    let tok = CharTokenizer::new();
    let data = TokenDataset::from_text(&tok, &Corpus::TinyShakespeare.generate(20_000, 5));
    (runtime, cfg, data)
}

fn seq_placement(cfg: &ModelConfig) -> Placement {
    Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    )
}

/// The seed placement with replicas grafted onto the low-index experts
/// of every block (degrees 3 and 2).
fn replicated(cfg: &ModelConfig) -> ReplicatedPlacement {
    let mut rep = ReplicatedPlacement::from(&seq_placement(cfg));
    for l in 0..cfg.blocks {
        rep.add_replica(l, 0, 2);
        rep.add_replica(l, 0, 4);
        rep.add_replica(l, 1, 5);
    }
    rep
}

/// Runs `steps` fine-tuning steps from identical pretrain + data seeds
/// and returns the per-step metrics. `overlap` picks the grad-sync wire
/// schedule: sequential round-trips (the seed protocol) or all fetches
/// issued up front (`VELA_SYNC_OVERLAP=on`).
fn train_with(
    placement: impl Into<ReplicatedPlacement>,
    steps: usize,
    overlap: bool,
) -> Vec<StepMetrics> {
    let (mut rt, cfg, data) = launch(placement);
    rt.set_sync_overlap(overlap);
    let mut rng = DetRng::new(5);
    let metrics = (0..steps)
        .map(|_| {
            let b = data.sample_batch(2, cfg.seq_len, &mut rng);
            rt.train_step(&b.inputs, &b.targets, b.batch_size, b.seq_len)
                .expect("transport failed mid-step")
        })
        .collect();
    rt.shutdown();
    metrics
}

fn train(placement: impl Into<ReplicatedPlacement>, steps: usize) -> Vec<StepMetrics> {
    train_with(placement, steps, false)
}

#[test]
fn replicated_training_is_loss_for_loss_identical_to_single_copy() {
    let cfg = ModelConfig::test_small();
    let single = train(seq_placement(&cfg), 6);
    let multi = train(replicated(&cfg), 6);
    for (s, m) in single.iter().zip(&multi) {
        assert_eq!(
            s.loss, m.loss,
            "step {}: replication must be computation-transparent",
            s.step
        );
    }
    // The single-owner run never syncs; the replicated run pays real,
    // ledgered sync bytes on every step.
    assert!(single.iter().all(|m| m.traffic.sync_bytes == 0));
    assert!(single.iter().all(|m| m.time.sync_s == 0.0));
    for m in &multi {
        assert!(m.traffic.sync_bytes > 0, "replicas must sync every step");
        assert!(
            m.traffic.sync_bytes < m.traffic.total_bytes,
            "sync bytes are a subset of the ledger"
        );
        assert!(m.time.sync_s > 0.0, "sync time must be modeled");
    }
}

#[test]
fn replicated_session_evaluates_and_reassembles_exactly() {
    let cfg = ModelConfig::test_small();
    let (mut single, s_cfg, data) = launch(seq_placement(&cfg));
    let (mut multi, _, _) = launch(replicated(&cfg));
    let batch = data.sample_batch(2, s_cfg.seq_len, &mut DetRng::new(9));

    // Same pretrain seeds, bit-identical replicas: the forward pass must
    // agree no matter which replica serves each expert batch.
    let a = single.evaluate(
        &batch.inputs,
        &batch.targets,
        batch.batch_size,
        batch.seq_len,
    );
    let b = multi.evaluate(
        &batch.inputs,
        &batch.targets,
        batch.batch_size,
        batch.seq_len,
    );
    assert_eq!(a, b, "routing to a replica must not change the math");

    // Teardown dedupes replicas (first copy wins — they are identical)
    // and still reassembles the full population.
    let (_, merged) = multi.shutdown();
    assert_eq!(merged.present_count(), cfg.blocks * cfg.experts);
    single.shutdown();
}

#[test]
fn budget_replication_from_the_knob_stays_transparent() {
    // The VELA_REPLICATION=budget:<frac> path: degrees chosen by the cost
    // model from a skewed access histogram, not hand-picked.
    let cfg = ModelConfig::test_small();
    let base = seq_placement(&cfg);
    let profile = LocalityProfile::synthetic("skew", cfg.blocks, cfg.experts, 1.5, 3);
    let problem = PlacementProblem::new(
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        profile.to_matrix(),
        (2 * cfg.seq_len * cfg.top_k) as f64,
        (cfg.dim * 4) as u64,
        PlacementProblem::even_capacities(cfg.blocks, cfg.experts, 6, 2),
    );
    assert!(
        ReplicationConfig::parse("off")
            .apply(&base, &problem)
            .is_degree_one(),
        "off must be the degree-1 identity"
    );
    let rep = ReplicationConfig::parse("budget:1.0").apply(&base, &problem);
    assert!(rep.max_degree() > 1, "the budget should admit replicas");

    let single = train(base, 4);
    let multi = train(rep, 4);
    for (s, m) in single.iter().zip(&multi) {
        assert_eq!(s.loss, m.loss, "cost-model degrees must stay transparent");
    }
    assert!(multi.iter().all(|m| m.traffic.sync_bytes > 0));
}

#[test]
fn overlapped_grad_sync_is_bitwise_identical_to_sequential() {
    // The VELA_SYNC_OVERLAP=on path restructures the per-target
    // round-trips into flows issued up front; workers only apply peer
    // gradients at StepEnd, so the training run — and the canonicalized
    // ledger — must not move by a bit.
    let cfg = ModelConfig::test_small();
    let base = seq_placement(&cfg);
    let profile = LocalityProfile::synthetic("skew", cfg.blocks, cfg.experts, 1.5, 3);
    let problem = PlacementProblem::new(
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        profile.to_matrix(),
        (2 * cfg.seq_len * cfg.top_k) as f64,
        (cfg.dim * 4) as u64,
        PlacementProblem::even_capacities(cfg.blocks, cfg.experts, 6, 2),
    );
    let rep = ReplicationConfig::parse("budget:0.25").apply(&base, &problem);
    assert!(rep.max_degree() > 1, "the budget should admit replicas");

    let sequential = train_with(rep.clone(), 5, false);
    let overlapped = train_with(rep, 5, true);
    for (s, o) in sequential.iter().zip(&overlapped) {
        assert_eq!(
            s.loss, o.loss,
            "step {}: overlapped sync must stay loss-for-loss identical",
            s.step
        );
    }
    assert_eq!(
        sequential, overlapped,
        "overlapped sync must leave every step metric bitwise unchanged"
    );
    assert!(sequential.iter().all(|m| m.traffic.sync_bytes > 0));
}

//! The paper's §V-A parity claim: "fine-tuning MoE models with Vela
//! produces the same convergence results as traditional fine-tuning",
//! because the distributed framework is computation-identical to a
//! single-device run.
//!
//! These tests verify it at the strongest level — bit-for-bit equality of
//! losses and parameters — across placements and step counts.

use vela::model::finetune::prepare_for_finetune;
use vela::nn::param::Module;
use vela::prelude::*;

fn pretrained_pair() -> (
    (MoeModel, LocalExpertStore),
    (MoeModel, LocalExpertStore),
    ModelConfig,
) {
    let mut cfg = ModelConfig::test_small();
    cfg.vocab = CharTokenizer::new().vocab_size();
    let pcfg = PretrainConfig {
        steps: 25,
        batch_size: 4,
        corpus_chars: 20_000,
        seed: 77,
        ..PretrainConfig::default()
    };
    let a = pretrain(&cfg, &pcfg);
    let b = pretrain(&cfg, &pcfg);
    let mut pair_a = (a.model, a.experts);
    let mut pair_b = (b.model, b.experts);
    prepare_for_finetune(
        &mut pair_a.0,
        &mut pair_a.1,
        LoraConfig::default(),
        &mut DetRng::new(9),
    );
    prepare_for_finetune(
        &mut pair_b.0,
        &mut pair_b.1,
        LoraConfig::default(),
        &mut DetRng::new(9),
    );
    (pair_a, pair_b, cfg)
}

fn param_fingerprint(module: &mut dyn Module) -> Vec<(String, f32, f32)> {
    let mut out = Vec::new();
    module.visit_params(&mut |p| {
        out.push((p.name().to_string(), p.value.sum(), p.value.norm()));
    });
    out
}

fn run_parity(placement_fn: impl Fn(&ModelConfig) -> Placement, steps: usize) {
    run_parity_over(TransportConfig::channel(), placement_fn, steps);
}

fn run_parity_over(
    transport: TransportConfig,
    placement_fn: impl Fn(&ModelConfig) -> Placement,
    steps: usize,
) {
    let ((mut local_model, mut local_experts), (dist_model, dist_experts), cfg) = pretrained_pair();
    let placement = placement_fn(&cfg);
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let mut runtime = RealRuntime::launch_with(
        transport,
        dist_model,
        dist_experts,
        placement,
        topology,
        DeviceId(0),
        workers,
        AdamWConfig::default(),
    );
    let mut opt_m = AdamW::new(AdamWConfig::default());
    let mut opt_e = AdamW::new(AdamWConfig::default());

    let tok = CharTokenizer::new();
    let dataset = TokenDataset::from_text(&tok, &Corpus::TinyShakespeare.generate(20_000, 4));
    let mut rng = DetRng::new(55);
    for step in 0..steps {
        let batch = dataset.sample_batch(4, cfg.seq_len, &mut rng);
        let dist = runtime
            .train_step(
                &batch.inputs,
                &batch.targets,
                batch.batch_size,
                batch.seq_len,
            )
            .expect("transport failed mid-step");
        local_experts.zero_grad();
        let local = local_model.train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
            &mut local_experts,
        );
        opt_m.step(&mut local_model);
        opt_e.step(&mut local_experts);
        assert_eq!(
            dist.loss.unwrap(),
            local.loss,
            "loss diverged at step {step}"
        );
    }

    // Parameters must match exactly after training.
    let (mut dist_model, mut dist_experts) = runtime.shutdown();
    assert_eq!(
        param_fingerprint(&mut dist_model),
        param_fingerprint(&mut local_model),
        "backbone parameters diverged"
    );
    assert_eq!(
        param_fingerprint(&mut dist_experts),
        param_fingerprint(&mut local_experts),
        "expert parameters diverged"
    );
}

#[test]
fn parity_with_sequential_placement() {
    run_parity(
        |cfg| {
            Placement::new(
                (0..cfg.blocks)
                    .map(|_| (0..cfg.experts).map(|e| e % 6).collect())
                    .collect(),
                6,
            )
        },
        4,
    );
}

#[test]
fn parity_with_random_placement() {
    run_parity(
        |cfg| {
            let mut rng = DetRng::new(123);
            Placement::new(
                (0..cfg.blocks)
                    .map(|_| (0..cfg.experts).map(|_| rng.below(6)).collect())
                    .collect(),
                6,
            )
        },
        4,
    );
}

#[test]
fn parity_with_all_experts_on_one_worker() {
    run_parity(
        |cfg| Placement::new(vec![vec![3; cfg.experts]; cfg.blocks], 6),
        3,
    );
}

#[test]
fn parity_holds_over_tcp_loopback_too() {
    // The §V-A claim is transport-independent: the same bit-for-bit
    // equality must hold when every activation crosses a real socket.
    run_parity_over(
        TransportConfig::tcp_threads(),
        |cfg| {
            Placement::new(
                (0..cfg.blocks)
                    .map(|_| (0..cfg.experts).map(|e| e % 6).collect())
                    .collect(),
                6,
            )
        },
        3,
    );
}

#[test]
fn routing_decisions_are_identical_too() {
    // Beyond losses: the actual expert selections of the distributed and
    // local runs must coincide (same gate, same inputs).
    let ((mut local_model, mut local_experts), (dist_model, dist_experts), cfg) = pretrained_pair();
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let placement = Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    );
    let mut runtime = RealRuntime::launch(
        dist_model,
        dist_experts,
        placement,
        topology,
        DeviceId(0),
        workers,
        AdamWConfig::default(),
    );
    let tok = CharTokenizer::new();
    let dataset = TokenDataset::from_text(&tok, &Corpus::Alpaca.generate(15_000, 2));
    let batch = dataset.sample_batch(2, cfg.seq_len, &mut DetRng::new(8));

    runtime
        .train_step(
            &batch.inputs,
            &batch.targets,
            batch.batch_size,
            batch.seq_len,
        )
        .expect("transport failed mid-step");
    let dist_routing = runtime.model().routing_snapshot();

    local_experts.zero_grad();
    local_model.train_step(
        &batch.inputs,
        &batch.targets,
        batch.batch_size,
        batch.seq_len,
        &mut local_experts,
    );
    let local_routing = local_model.routing_snapshot();

    assert_eq!(dist_routing, local_routing);
    runtime.shutdown();
}

//! Property-based tests spanning crates: the LP + rounding pipeline, the
//! wire format, the traffic ledger, and the Theorem 1 bound.

use proptest::prelude::*;
use vela::locality::theorem::drift_bound_from_logits;
use vela::placement::Strategy as Plan;
use vela::prelude::{DeviceId, DetRng, LocalityProfile, PlacementProblem, Tensor, Topology};
use vela::runtime::message::{Message, Payload};

fn profile_strategy(blocks: usize, experts: usize) -> impl proptest::strategy::Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(0.01f64..1.0, experts),
        blocks,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|row| {
                let sum: f64 = row.iter().sum();
                row.into_iter().map(|p| p / sum).collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rounding any LP relaxation yields a feasible placement, and no
    /// heuristic ever beats the LP lower bound.
    #[test]
    fn lp_rounding_always_feasible(probs in profile_strategy(3, 4), cap_slack in 0usize..3) {
        let topology = Topology::paper_testbed();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let problem = PlacementProblem::new(
            topology,
            DeviceId(0),
            workers,
            probs,
            512.0,
            8192,
            PlacementProblem::even_capacities(3, 4, 6, cap_slack),
        );
        for strategy in [
            Plan::Vela,
            Plan::Sequential,
            Plan::Random { seed: 1 },
            Plan::Greedy,
        ] {
            let placement = strategy.place(&problem);
            prop_assert!(placement.respects_capacities(problem.capacities()));
            prop_assert_eq!(placement.load().iter().sum::<usize>(), 12);
            prop_assert!(problem.expected_comm_time(&placement).is_finite());
        }
        // LP relaxation lower-bounds every binary placement (the LP works
        // in cost-scaled units; convert back to seconds).
        let lp = vela::placement::lp::build::build_lp(&problem).solve();
        let scale = vela::placement::lp::build::cost_scale(&problem);
        let vela_cost = problem.expected_comm_time(&Plan::Vela.place(&problem));
        prop_assert!(lp.objective * scale <= vela_cost + 1e-9);
    }

    /// Messages survive encode/decode for arbitrary real payload shapes.
    #[test]
    fn message_roundtrip(rows in 1usize..20, cols in 1usize..20, block in 0u32..64, expert in 0u32..8) {
        let mut rng = DetRng::new(u64::from(block) * 8 + u64::from(expert));
        let t = Tensor::uniform((rows, cols), -10.0, 10.0, &mut rng);
        let msg = Message::TokenBatch { block, expert, payload: Payload::from_tensor(&t) };
        prop_assert_eq!(Message::decode(msg.encode()), msg);
    }

    /// Virtual payloads account exactly rows × bytes_per_token.
    #[test]
    fn virtual_accounting(rows in 1u32..100_000, bpt in 1u32..16_384) {
        let p = Payload::Virtual { rows, bytes_per_token: bpt };
        prop_assert_eq!(p.accounted_bytes(), u64::from(rows) * u64::from(bpt));
    }

    /// The ledger conserves bytes: sum of sent externals equals sum of
    /// received externals, and internal + external equals total.
    #[test]
    fn ledger_conservation(transfers in prop::collection::vec((0usize..6, 0usize..6, 1u64..10_000), 1..50)) {
        let ledger = vela::cluster::TrafficLedger::new(Topology::paper_testbed());
        let mut expected_total = 0u64;
        for &(s, d, b) in &transfers {
            ledger.record(DeviceId(s), DeviceId(d), b);
            if s != d {
                expected_total += b;
            }
        }
        let t = ledger.peek();
        prop_assert_eq!(t.total_bytes, expected_total);
        prop_assert_eq!(
            t.external_sent_per_node.iter().sum::<u64>(),
            t.external_recv_per_node.iter().sum::<u64>()
        );
        prop_assert_eq!(t.internal_bytes + t.external_total(), t.total_bytes);
    }

    /// Theorem 1's first-order bound holds for exact softmax pairs under
    /// small logit perturbations.
    #[test]
    fn softmax_drift_bound_holds(
        logits in prop::collection::vec(-4.0f64..4.0, 6),
        delta in prop::collection::vec(-1e-3f64..1e-3, 6),
    ) {
        let softmax = |v: &[f64]| {
            let m = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let e: Vec<f64> = v.iter().map(|x| (x - m).exp()).collect();
            let s: f64 = e.iter().sum();
            e.into_iter().map(|x| x / s).collect::<Vec<f64>>()
        };
        let p0 = softmax(&logits);
        let shifted: Vec<f64> = logits.iter().zip(&delta).map(|(&l, &d)| l + d).collect();
        let p1 = softmax(&shifted);
        let max_drift = delta.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        for e in 0..6 {
            let observed = (p0[e] - p1[e]).abs();
            let bound = drift_bound_from_logits(p0[e], 6, max_drift);
            prop_assert!(
                observed <= bound * 1.05 + 1e-12,
                "expert {}: observed {} bound {}", e, observed, bound
            );
        }
    }

    /// Locality profiles sample valid distinct top-k sets.
    #[test]
    fn profile_sampling_valid(zipf in 0.0f64..2.5, seed in 0u64..100) {
        let profile = LocalityProfile::synthetic("p", 2, 8, zipf, seed);
        let mut rng = DetRng::new(seed);
        let picks = profile.sample_topk(0, 2, &mut rng);
        prop_assert_eq!(picks.len(), 2);
        prop_assert_ne!(picks[0], picks[1]);
        prop_assert!(picks.iter().all(|&e| e < 8));
    }
}

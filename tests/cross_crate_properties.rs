//! Randomized property tests spanning crates: the LP + rounding pipeline,
//! the wire format, the traffic ledger, and the Theorem 1 bound.
//!
//! Each property is checked over many [`DetRng`]-seeded random cases, so
//! the suite is fully deterministic and needs no external test framework.

use vela::locality::theorem::drift_bound_from_logits;
use vela::placement::Strategy as Plan;
use vela::prelude::{DetRng, DeviceId, LocalityProfile, PlacementProblem, Tensor, Topology};
use vela::runtime::message::{Message, Payload};

const CASES: u64 = 32;

fn random_profile(blocks: usize, experts: usize, rng: &mut DetRng) -> Vec<Vec<f64>> {
    (0..blocks)
        .map(|_| {
            let row: Vec<f64> = (0..experts)
                .map(|_| 0.01 + 0.99 * f64::from(rng.unit()))
                .collect();
            let sum: f64 = row.iter().sum();
            row.into_iter().map(|p| p / sum).collect()
        })
        .collect()
}

/// Rounding any LP relaxation yields a feasible placement, and no
/// heuristic ever beats the LP lower bound.
#[test]
fn lp_rounding_always_feasible() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let probs = random_profile(3, 4, &mut rng);
        let cap_slack = rng.below(3);
        let topology = Topology::paper_testbed();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let problem = PlacementProblem::new(
            topology,
            DeviceId(0),
            workers,
            probs,
            512.0,
            8192,
            PlacementProblem::even_capacities(3, 4, 6, cap_slack),
        );
        for strategy in [
            Plan::Vela,
            Plan::Sequential,
            Plan::Random { seed: 1 },
            Plan::Greedy,
        ] {
            let placement = strategy.place(&problem);
            assert!(
                placement.respects_capacities(problem.capacities()),
                "seed {seed}: {strategy:?} violates capacities"
            );
            assert_eq!(placement.load().iter().sum::<usize>(), 12, "seed {seed}");
            assert!(problem.expected_comm_time(&placement).is_finite());
        }
        // LP relaxation lower-bounds every binary placement (the LP works
        // in cost-scaled units; convert back to seconds).
        let lp = vela::placement::lp::build::build_lp(&problem).solve();
        let scale = vela::placement::lp::build::cost_scale(&problem);
        let vela_cost = problem.expected_comm_time(&Plan::Vela.place(&problem));
        assert!(lp.objective * scale <= vela_cost + 1e-9, "seed {seed}");
    }
}

/// Messages survive encode/decode for arbitrary real payload shapes.
#[test]
fn message_roundtrip() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let rows = 1 + rng.below(19);
        let cols = 1 + rng.below(19);
        let block = rng.below(64) as u32;
        let expert = rng.below(8) as u32;
        let t = Tensor::uniform((rows, cols), -10.0, 10.0, &mut rng);
        let msg = Message::TokenBatch {
            block,
            expert,
            payload: Payload::from_tensor(&t),
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg, "seed {seed}");
    }
}

/// Virtual payloads account exactly rows × bytes_per_token.
#[test]
fn virtual_accounting() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let rows = 1 + rng.below(100_000) as u32;
        let bpt = 1 + rng.below(16_384) as u32;
        let p = Payload::Virtual {
            rows,
            bytes_per_token: bpt,
        };
        assert_eq!(p.accounted_bytes(), u64::from(rows) * u64::from(bpt));
    }
}

/// The ledger conserves bytes: sum of sent externals equals sum of
/// received externals, and internal + external equals total.
#[test]
fn ledger_conservation() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let transfers: Vec<(usize, usize, u64)> = (0..(1 + rng.below(49)))
            .map(|_| (rng.below(6), rng.below(6), 1 + rng.below(9_999) as u64))
            .collect();
        let ledger = vela::cluster::TrafficLedger::new(Topology::paper_testbed());
        let mut expected_total = 0u64;
        for &(s, d, b) in &transfers {
            ledger.record(DeviceId(s), DeviceId(d), b);
            if s != d {
                expected_total += b;
            }
        }
        let t = ledger.peek();
        assert_eq!(t.total_bytes, expected_total, "seed {seed}");
        assert_eq!(
            t.external_sent_per_node.iter().sum::<u64>(),
            t.external_recv_per_node.iter().sum::<u64>()
        );
        assert_eq!(t.internal_bytes + t.external_total(), t.total_bytes);
    }
}

/// Theorem 1's first-order bound holds for exact softmax pairs under
/// small logit perturbations.
#[test]
fn softmax_drift_bound_holds() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let logits: Vec<f64> = (0..6).map(|_| f64::from(rng.uniform(-4.0, 4.0))).collect();
        let delta: Vec<f64> = (0..6)
            .map(|_| f64::from(rng.uniform(-1e-3, 1e-3)))
            .collect();
        let softmax = |v: &[f64]| {
            let m = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let e: Vec<f64> = v.iter().map(|x| (x - m).exp()).collect();
            let s: f64 = e.iter().sum();
            e.into_iter().map(|x| x / s).collect::<Vec<f64>>()
        };
        let p0 = softmax(&logits);
        let shifted: Vec<f64> = logits.iter().zip(&delta).map(|(&l, &d)| l + d).collect();
        let p1 = softmax(&shifted);
        let max_drift = delta.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        for e in 0..6 {
            let observed = (p0[e] - p1[e]).abs();
            let bound = drift_bound_from_logits(p0[e], 6, max_drift);
            assert!(
                observed <= bound * 1.05 + 1e-12,
                "seed {seed} expert {e}: observed {observed} bound {bound}"
            );
        }
    }
}

/// Locality profiles sample valid distinct top-k sets.
#[test]
fn profile_sampling_valid() {
    for seed in 0..CASES {
        let zipf = f64::from(DetRng::new(seed ^ 0x21F).uniform(0.0, 2.5));
        let profile = LocalityProfile::synthetic("p", 2, 8, zipf, seed);
        let mut rng = DetRng::new(seed);
        let picks = profile.sample_topk(0, 2, &mut rng);
        assert_eq!(picks.len(), 2, "seed {seed}");
        assert_ne!(picks[0], picks[1], "seed {seed}");
        assert!(picks.iter().all(|&e| e < 8));
    }
}

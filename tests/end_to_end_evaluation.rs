//! Small-scale versions of the paper's headline results (Figs. 5 and 6),
//! run end-to-end: measured locality → placement LP → live engines.

use vela::model::finetune::prepare_for_finetune;
use vela::prelude::*;

/// A Mixtral-shaped (8-expert, top-2) spec small enough for tests.
fn test_spec() -> MoeSpec {
    MoeSpec {
        blocks: 8,
        experts: 8,
        top_k: 2,
        hidden: 4096,
        ffn: 14336,
        bits: 16,
    }
}

/// Measured profile from a quickly pre-trained micro proxy.
fn measured_profile(corpus: Corpus, spec: &MoeSpec) -> LocalityProfile {
    let mut cfg = ModelConfig::mixtral_micro(CharTokenizer::new().vocab_size());
    cfg.blocks = spec.blocks;
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps: 80,
            batch_size: 8,
            corpus_chars: 60_000,
            seed: 31,
            ..PretrainConfig::default()
        },
    );
    let (mut model, mut experts) = (pre.model, pre.experts);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(4),
    );
    let tok = CharTokenizer::new();
    let data = TokenDataset::from_text(&tok, &corpus.generate(40_000, 6));
    measure_locality(&mut model, &mut experts, &data, 8, 12)
}

fn summaries(profile: &LocalityProfile, spec: &MoeSpec, steps: usize) -> Vec<(String, RunSummary)> {
    let topology = Topology::paper_testbed();
    let workers: Vec<DeviceId> = topology.devices().iter().map(|d| d.id).collect();
    let scale = ScaleConfig {
        batch: 8,
        seq: 128,
        ..ScaleConfig::paper_default(*spec)
    };
    // Capacity scaled to the instance (memory-derived capacity would let
    // the small 8-block test spec fit entirely on one node).
    let caps = PlacementProblem::even_capacities(spec.blocks, spec.experts, workers.len(), 3);
    let problem = PlacementProblem::new(
        topology.clone(),
        DeviceId(0),
        workers.clone(),
        profile.to_matrix(),
        (scale.tokens() * spec.top_k) as f64,
        spec.token_bytes(),
        caps,
    );

    let mut out = Vec::new();
    // EP baseline.
    let mut ep = EpEngine::new(
        topology.clone(),
        workers.clone(),
        profile.clone(),
        scale.clone(),
    );
    out.push(("EP".to_string(), RunSummary::from_steps(&ep.run(steps))));
    // Master-worker strategies.
    for strategy in [
        Strategy::Sequential,
        Strategy::Random { seed: 3 },
        Strategy::Vela,
    ] {
        let placement = strategy.place(&problem);
        let mut engine = VirtualEngine::launch(
            topology.clone(),
            DeviceId(0),
            workers.clone(),
            placement,
            profile.clone(),
            scale.clone(),
        );
        let metrics = engine.run(steps);
        engine.shutdown();
        out.push((
            strategy.label().to_string(),
            RunSummary::from_steps(&metrics),
        ));
    }
    out
}

fn get<'a>(rows: &'a [(String, RunSummary)], label: &str) -> &'a RunSummary {
    &rows.iter().find(|(l, _)| l == label).expect("label").1
}

#[test]
fn fig5_shape_vela_has_lowest_external_traffic() {
    let spec = test_spec();
    let profile = measured_profile(Corpus::WikiText, &spec);
    let rows = summaries(&profile, &spec, 8);
    let vela = get(&rows, "Vela").avg_external_per_node;
    for label in ["EP", "Sequential", "Random"] {
        let other = get(&rows, label).avg_external_per_node;
        assert!(
            vela < other,
            "Vela ({vela:.0} B) must beat {label} ({other:.0} B)"
        );
    }
    // The reduction vs EP lands in a plausible band (paper: 17–25%).
    let reduction = RunSummary::reduction_vs(vela, get(&rows, "EP").avg_external_per_node);
    assert!(
        (0.05..0.80).contains(&reduction),
        "reduction vs EP out of band: {:.1}%",
        reduction * 100.0
    );
}

#[test]
fn fig5_shape_baselines_are_roughly_equal() {
    let spec = test_spec();
    let profile = measured_profile(Corpus::Alpaca, &spec);
    let rows = summaries(&profile, &spec, 8);
    let seq = get(&rows, "Sequential").avg_external_per_node;
    let rand = get(&rows, "Random").avg_external_per_node;
    let ep = get(&rows, "EP").avg_external_per_node;
    // Sequential vs random: same framework, no optimization — same
    // regime. (Sequential tends to land somewhat below random on measured
    // profiles, since it keeps each block's experts on few nodes.)
    assert!(
        (seq - rand).abs() / seq < 0.60,
        "seq {seq:.0} vs random {rand:.0}"
    );
    // EP is in the same regime (the paper: "roughly the same", slightly
    // higher due to gradient sync).
    assert!(
        ep > 0.4 * seq && ep < 2.5 * seq,
        "EP {ep:.0} vs sequential {seq:.0}"
    );
}

#[test]
fn fig6_shape_vela_is_fastest_and_ep_pays_sync() {
    let spec = test_spec();
    let profile = measured_profile(Corpus::WikiText, &spec);
    let rows = summaries(&profile, &spec, 8);
    let vela = get(&rows, "Vela");
    let ep = get(&rows, "EP");
    let seq = get(&rows, "Sequential");
    assert!(
        vela.avg_step_time < ep.avg_step_time,
        "Vela {} vs EP {}",
        vela.avg_step_time,
        ep.avg_step_time
    );
    assert!(
        vela.avg_step_time < seq.avg_step_time,
        "Vela {} vs Sequential {}",
        vela.avg_step_time,
        seq.avg_step_time
    );
    // The architectural difference: only EP accumulates sync time.
    assert!(ep.avg_sync_time > 0.0);
    assert_eq!(vela.avg_sync_time, 0.0);
    assert_eq!(seq.avg_sync_time, 0.0);
}

#[test]
fn wikitext_benefit_exceeds_alpaca_benefit() {
    // §V-B performance analysis: concentrated WikiText routing gives VELA
    // more to exploit than the broader Alpaca mix.
    let spec = test_spec();
    let wiki = measured_profile(Corpus::WikiText, &spec);
    let alpaca = measured_profile(Corpus::Alpaca, &spec);
    assert!(
        wiki.mean_concentration() >= alpaca.mean_concentration() * 0.8,
        "unexpected concentrations: wiki {:.3} vs alpaca {:.3}",
        wiki.mean_concentration(),
        alpaca.mean_concentration()
    );
}

//! The int8 wire format's accuracy gate (fig5-style loss-curve check).
//!
//! `VELA_QUANT=int8` is the one exchange knob that is *allowed* to change
//! numbers: activations and gradients cross the wire as int8 codes with
//! per-row f32 scales, so expert inputs are reconstructed to within
//! `amax/254` of the exact values. The transport-parity grid pins every
//! exact shape bit for bit; this test pins the lossy one to a tolerance —
//! quantized training must still learn, and its loss curve must track the
//! exact curve closely, step by step.

use vela::prelude::*;
use vela::runtime::{ExchangeConfig, Quant};

const STEPS: usize = 16;

fn loss_curve(quant: Quant) -> Vec<f32> {
    let cfg = ModelConfig::test_small();
    let mut rng = DetRng::new(11);
    let (model, experts) = MoeModel::new(&cfg, &mut rng);
    let workers = 6;
    let placement = Placement::new(
        (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % workers).collect())
            .collect(),
        workers,
    );
    let mut rt = RealRuntime::launch_with(
        TransportConfig::channel(),
        model,
        experts,
        placement,
        Topology::paper_testbed(),
        DeviceId(0),
        (0..workers).map(DeviceId).collect(),
        AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        },
    );
    rt.set_exchange(ExchangeConfig::packed(quant));

    let mut data_rng = DetRng::new(2);
    let n = 2 * cfg.seq_len;
    let inputs: Vec<usize> = (0..n).map(|_| data_rng.below(cfg.vocab)).collect();
    let targets: Vec<usize> = (0..n).map(|_| data_rng.below(cfg.vocab)).collect();

    let losses: Vec<f32> = (0..STEPS)
        .map(|_| {
            rt.train_step(&inputs, &targets, 2, cfg.seq_len)
                .expect("transport failed mid-step")
                .loss
                .unwrap()
        })
        .collect();
    rt.shutdown();
    losses
}

#[test]
fn int8_wire_training_tracks_the_exact_loss_curve() {
    let exact = loss_curve(Quant::Off);
    let lossy = loss_curve(Quant::Int8);

    // Exact packed training learns (sanity — also pinned elsewhere).
    assert!(
        exact.last().unwrap() < exact.first().unwrap(),
        "exact curve must decrease: {exact:?}"
    );
    // Quantized training still learns.
    assert!(
        lossy.last().unwrap() < lossy.first().unwrap(),
        "int8 curve must decrease: {lossy:?}"
    );
    // And tracks the exact curve step by step: int8 reconstruction error
    // is <0.4% per activation, so the curves may drift but not diverge.
    for (step, (e, l)) in exact.iter().zip(&lossy).enumerate() {
        let rel = (e - l).abs() / e.abs().max(1e-6);
        assert!(
            rel < 0.05,
            "step {step}: int8 loss {l} deviates {:.2}% from exact {e} (>5%)\nexact: {exact:?}\nint8:  {lossy:?}",
            100.0 * rel
        );
    }
}

/// The quantized wire is genuinely lossy — the gate above must not be
/// passing because int8 silently fell back to the exact path.
#[test]
fn int8_wire_is_actually_lossy() {
    let exact = loss_curve(Quant::Off);
    let lossy = loss_curve(Quant::Int8);
    assert_ne!(
        exact, lossy,
        "int8 training reproduced the exact losses bit for bit — quantization is not engaged"
    );
}

//! Transport parity: the pluggable transport seam must be invisible in
//! every number the system reports.
//!
//! The same VirtualEngine workload runs once over in-process channels and
//! once over loopback TCP sockets; every [`StepMetrics`] — ledger traffic
//! windows, simulated time breakdowns, step indices — must be *bitwise*
//! identical, because the hub accounts protocol bytes identically no
//! matter what carries the frames.
//!
//! The exchange pipeline adds four more axes that must be equally
//! invisible: per-worker frame coalescing (`VELA_COALESCE`), microbatched
//! dispatch (`VELA_MICROBATCH`, including `auto`), the ring depth
//! (`VELA_PIPELINE_DEPTH`), and the column-packed wire layout
//! (`VELA_WIRE=packed`). The full
//! {transport × coalesce × microbatch × depth × wire} grid must reproduce
//! the per-batch, unpipelined baseline bit for bit. (Only `VELA_QUANT=int8`
//! is allowed to change anything, and it is gated separately by the
//! `quant_accuracy` loss-curve test.)

use vela::placement::ReplicatedPlacement;
use vela::prelude::*;
use vela::runtime::{ExchangeConfig, Microbatch, WireFormat};

fn parity_spec() -> MoeSpec {
    MoeSpec {
        blocks: 4,
        experts: 8,
        top_k: 2,
        hidden: 1024,
        ffn: 4096,
        bits: 16,
    }
}

fn parity_placement() -> Placement {
    let spec = parity_spec();
    Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    )
}

/// The seed placement with real replicas grafted on: the hot low-index
/// experts gain extra copies (degrees 3 and 2), everything else stays
/// single-owner. Exercises least-loaded routing and replica gradient
/// sync on every step.
fn replicated_parity_placement() -> ReplicatedPlacement {
    let mut rep = ReplicatedPlacement::from(&parity_placement());
    for l in 0..parity_spec().blocks {
        rep.add_replica(l, 0, 1);
        rep.add_replica(l, 0, 3);
        rep.add_replica(l, 1, 5);
    }
    rep
}

fn workload_on(
    transport: TransportConfig,
    exchange: ExchangeConfig,
    placement: impl Into<ReplicatedPlacement>,
) -> Vec<StepMetrics> {
    let spec = parity_spec();
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 1e-3,
        ..ScaleConfig::paper_default(spec)
    };
    let profile = LocalityProfile::synthetic("parity", spec.blocks, spec.experts, 1.2, 17);
    let mut engine = VirtualEngine::launch_with(
        transport,
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        placement,
        profile,
        scale,
    );
    engine.set_exchange(exchange);
    let metrics = engine.run(5);
    engine.shutdown();
    metrics
}

fn workload(transport: TransportConfig, exchange: ExchangeConfig) -> Vec<StepMetrics> {
    workload_on(transport, exchange, parity_placement())
}

#[test]
fn ledger_windows_are_bitwise_identical_across_transports() {
    let over_channel = workload(TransportConfig::channel(), ExchangeConfig::default());
    let over_tcp = workload(TransportConfig::tcp_threads(), ExchangeConfig::default());
    assert_eq!(
        over_channel, over_tcp,
        "every StepMetrics field must be transport-independent"
    );
    // Spot-check the comparison had teeth: real bytes moved.
    assert!(over_channel.iter().all(|m| m.traffic.total_bytes > 0));
    assert!(over_channel.iter().all(|m| m.traffic.external_total() > 0));
}

#[test]
fn run_summaries_agree_except_for_the_label() {
    let a = RunSummary::from_steps(&workload(
        TransportConfig::channel(),
        ExchangeConfig::default(),
    ))
    .with_transport("channel");
    let b = RunSummary::from_steps(&workload(
        TransportConfig::tcp_threads(),
        ExchangeConfig::default(),
    ))
    .with_transport("channel");
    assert_eq!(a, b, "aggregates must be transport-independent");
    assert_eq!(a.steps, 5);
    assert!(a.total_bytes > 0);
}

/// The full {transport × coalesce × microbatch × depth × wire} grid is
/// bitwise-identical to the legacy shape (channel, per-batch frames, no
/// pipelining): the pipeline changes how frames move, never what they say
/// or cost. `auto` rides along — whatever chunk count the tuner picks
/// from its timings must be just as invisible — and so does the packed
/// wire layout, whose span-table framing accounts the same bytes the
/// per-item headers did.
#[test]
fn exchange_grid_is_bitwise_identical_to_per_batch_baseline() {
    let baseline = workload(TransportConfig::channel(), ExchangeConfig::per_batch());
    assert!(baseline.iter().all(|m| m.traffic.total_bytes > 0));
    let transports: [(&str, fn() -> TransportConfig); 2] = [
        ("channel", TransportConfig::channel),
        ("tcp-threads", TransportConfig::tcp_threads),
    ];
    for (label, transport) in transports {
        for wire in [WireFormat::Legacy, WireFormat::Packed] {
            for coalesce in [false, true] {
                for microbatch in [Microbatch::Fixed(1), Microbatch::Fixed(4), Microbatch::Auto] {
                    for depth in [1usize, 2, 4] {
                        let cfg = ExchangeConfig {
                            coalesce,
                            microbatch,
                            depth,
                            wire,
                            ..ExchangeConfig::default()
                        };
                        let metrics = workload(transport(), cfg);
                        assert_eq!(
                            baseline, metrics,
                            "({label}, wire={wire:?}, coalesce={coalesce}, \
                             microbatch={microbatch}, depth={depth}) diverged from the \
                             per-batch baseline"
                        );
                    }
                }
            }
        }
    }
}

/// Degree 1 is the identity refactor: a [`ReplicatedPlacement`] built
/// from the seed placement (one replica everywhere) must reproduce the
/// single-owner baseline bit for bit across the
/// {transport × wire × coalesce × microbatch} grid — and move zero
/// gradient-sync bytes, because there are no peers to keep in sync.
#[test]
fn degree_one_replication_is_bitwise_identical_to_the_single_owner_seed() {
    let baseline = workload(TransportConfig::channel(), ExchangeConfig::per_batch());
    assert!(
        baseline.iter().all(|m| m.traffic.sync_bytes == 0),
        "degree 1 must not move sync bytes"
    );
    let transports: [(&str, fn() -> TransportConfig); 2] = [
        ("channel", TransportConfig::channel),
        ("tcp-threads", TransportConfig::tcp_threads),
    ];
    for (label, transport) in transports {
        for wire in [WireFormat::Legacy, WireFormat::Packed] {
            for coalesce in [false, true] {
                for microbatch in [Microbatch::Fixed(1), Microbatch::Fixed(4), Microbatch::Auto] {
                    let cfg = ExchangeConfig {
                        coalesce,
                        microbatch,
                        wire,
                        ..ExchangeConfig::default()
                    };
                    let metrics = workload_on(
                        transport(),
                        cfg,
                        ReplicatedPlacement::from(&parity_placement()),
                    );
                    assert_eq!(
                        baseline, metrics,
                        "degree-1 replication diverged from the seed at \
                         ({label}, wire={wire:?}, coalesce={coalesce}, microbatch={microbatch})"
                    );
                }
            }
        }
    }
}

/// A placement with real replicas must itself be a fixed point of the
/// parity grid: least-loaded routing and the replica gradient-sync round
/// are deterministic, so every {transport × shape} combination — OS
/// worker processes included — reports bitwise-identical metrics, with
/// the sync traffic honestly on the ledger.
#[test]
fn replicated_arm_is_bitwise_identical_across_transports_and_shapes() {
    let baseline = workload_on(
        TransportConfig::channel(),
        ExchangeConfig::per_batch(),
        replicated_parity_placement(),
    );
    for m in &baseline {
        assert!(m.traffic.sync_bytes > 0, "replicas must sync every step");
        assert!(
            m.traffic.sync_bytes < m.traffic.total_bytes,
            "sync traffic is a strict subset of the ledger"
        );
        assert!(m.time.sync_s > 0.0, "sync time must be modeled");
    }
    let transports: [(&str, fn() -> TransportConfig); 2] = [
        ("channel", TransportConfig::channel),
        ("tcp-threads", TransportConfig::tcp_threads),
    ];
    for (label, transport) in transports {
        for wire in [WireFormat::Legacy, WireFormat::Packed] {
            for (coalesce, microbatch) in [
                (false, Microbatch::Fixed(1)),
                (true, Microbatch::Fixed(4)),
                (true, Microbatch::Auto),
            ] {
                let cfg = ExchangeConfig {
                    coalesce,
                    microbatch,
                    wire,
                    ..ExchangeConfig::default()
                };
                let metrics = workload_on(transport(), cfg, replicated_parity_placement());
                assert_eq!(
                    baseline, metrics,
                    "replicated arm diverged at ({label}, wire={wire:?}, \
                     coalesce={coalesce}, microbatch={microbatch})"
                );
            }
        }
    }
    // And over real OS worker processes on the default shape.
    let metrics = workload_on(
        TransportConfig::tcp_processes(),
        ExchangeConfig::default(),
        replicated_parity_placement(),
    );
    assert_eq!(
        baseline, metrics,
        "replicated arm diverged over OS worker processes"
    );
}

/// The same grid over real OS worker processes, on a representative
/// subset (process spawns are expensive): shallow unchunked, the default
/// chunked ring, and a deep auto-tuned ring. Process transport must be
/// exactly as invisible as the in-process backends.
#[test]
fn process_transport_matches_the_per_batch_baseline() {
    let baseline = workload(TransportConfig::channel(), ExchangeConfig::per_batch());
    let shapes = [
        (Microbatch::Fixed(1), 1usize, WireFormat::Legacy),
        (Microbatch::Fixed(4), 2, WireFormat::Packed),
        (Microbatch::Auto, 4, WireFormat::Packed),
    ];
    for (microbatch, depth, wire) in shapes {
        let cfg = ExchangeConfig {
            coalesce: true,
            microbatch,
            depth,
            wire,
            ..ExchangeConfig::default()
        };
        let metrics = workload(TransportConfig::tcp_processes(), cfg);
        assert_eq!(
            baseline, metrics,
            "(tcp, wire={wire:?}, coalesce=true, microbatch={microbatch}, depth={depth}) \
             diverged from the per-batch baseline"
        );
    }
}

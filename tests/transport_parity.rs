//! Transport parity: the pluggable transport seam must be invisible in
//! every number the system reports.
//!
//! The same VirtualEngine workload runs once over in-process channels and
//! once over loopback TCP sockets; every [`StepMetrics`] — ledger traffic
//! windows, simulated time breakdowns, step indices — must be *bitwise*
//! identical, because the hub accounts protocol bytes identically no
//! matter what carries the frames.

use vela::prelude::*;

fn workload(transport: TransportConfig) -> Vec<StepMetrics> {
    let spec = MoeSpec {
        blocks: 4,
        experts: 8,
        top_k: 2,
        hidden: 1024,
        ffn: 4096,
        bits: 16,
    };
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 1e-3,
        ..ScaleConfig::paper_default(spec)
    };
    let profile = LocalityProfile::synthetic("parity", spec.blocks, spec.experts, 1.2, 17);
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    );
    let mut engine = VirtualEngine::launch_with(
        transport,
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        placement,
        profile,
        scale,
    );
    let metrics = engine.run(5);
    engine.shutdown();
    metrics
}

#[test]
fn ledger_windows_are_bitwise_identical_across_transports() {
    let over_channel = workload(TransportConfig::channel());
    let over_tcp = workload(TransportConfig::tcp_threads());
    assert_eq!(
        over_channel, over_tcp,
        "every StepMetrics field must be transport-independent"
    );
    // Spot-check the comparison had teeth: real bytes moved.
    assert!(over_channel.iter().all(|m| m.traffic.total_bytes > 0));
    assert!(over_channel.iter().all(|m| m.traffic.external_total() > 0));
}

#[test]
fn run_summaries_agree_except_for_the_label() {
    let a = RunSummary::from_steps(&workload(TransportConfig::channel())).with_transport("channel");
    let b =
        RunSummary::from_steps(&workload(TransportConfig::tcp_threads())).with_transport("channel");
    assert_eq!(a, b, "aggregates must be transport-independent");
    assert_eq!(a.steps, 5);
    assert!(a.total_bytes > 0);
}

//! §III of the paper, as executable assertions: expert locality *emerges*
//! from balanced pre-training, differs across fine-tuning corpora, and
//! stays stable throughout fine-tuning.

use vela::model::finetune::{finetune, prepare_for_finetune, FinetuneConfig};
use vela::prelude::*;

fn pretrained(steps: usize, seed: u64) -> (MoeModel, LocalExpertStore, ModelConfig) {
    let mut cfg = ModelConfig::test_small();
    cfg.vocab = CharTokenizer::new().vocab_size();
    cfg.blocks = 4;
    cfg.experts = 6;
    let pre = pretrain(
        &cfg,
        &PretrainConfig {
            steps,
            batch_size: 8,
            corpus_chars: 60_000,
            seed,
            ..PretrainConfig::default()
        },
    );
    (pre.model, pre.experts, cfg)
}

#[test]
fn pretrained_models_route_unevenly_on_narrow_corpora() {
    let (mut model, mut experts, cfg) = pretrained(120, 5);
    let tok = CharTokenizer::new();
    let data = TokenDataset::from_text(&tok, &Corpus::WikiText.generate(40_000, 3));
    let profile = measure_locality(&mut model, &mut experts, &data, 8, 12);
    // Fig. 3(a): access is *not* uniform — some expert clearly dominates
    // somewhere.
    let uniform = 1.0 / cfg.experts as f64;
    let max_peak = (0..cfg.blocks)
        .map(|l| profile.row(l).iter().cloned().fold(0.0f64, f64::max))
        .fold(0.0, f64::max);
    assert!(
        max_peak > 1.4 * uniform,
        "expected visible locality, peak {max_peak:.3} vs uniform {uniform:.3}"
    );
}

#[test]
fn different_corpora_induce_different_profiles() {
    let (mut model, mut experts, _) = pretrained(120, 5);
    let tok = CharTokenizer::new();
    let wiki = TokenDataset::from_text(&tok, &Corpus::WikiText.generate(40_000, 3));
    let alpaca = TokenDataset::from_text(&tok, &Corpus::Alpaca.generate(40_000, 3));
    let p_wiki = measure_locality(&mut model, &mut experts, &wiki, 8, 12);
    let p_alpaca = measure_locality(&mut model, &mut experts, &alpaca, 8, 12);
    // Fig. 7: the profiles differ measurably.
    let mut total_tv = 0.0;
    for l in 0..p_wiki.blocks() {
        total_tv += vela::locality::stability::total_variation(p_wiki.row(l), p_alpaca.row(l));
    }
    assert!(
        total_tv / p_wiki.blocks() as f64 > 0.02,
        "profiles too similar: mean TV {:.4}",
        total_tv / p_wiki.blocks() as f64
    );
}

#[test]
fn locality_stays_stable_during_finetuning() {
    let (mut model, mut experts, cfg) = pretrained(120, 6);
    prepare_for_finetune(
        &mut model,
        &mut experts,
        LoraConfig::default(),
        &mut DetRng::new(2),
    );

    // Fine-tune while recording block-0 frequencies (Fig. 3(c)).
    let stats = finetune(
        &mut model,
        &mut experts,
        &FinetuneConfig {
            steps: 60,
            batch_size: 4,
            corpus: Corpus::TinyShakespeare,
            corpus_chars: 30_000,
            ..FinetuneConfig::default()
        },
    );
    // Individual 48-token batches are sampling-noise dominated; average
    // frequencies over 10-step windows (Fig. 3(c) plots a moving picture of
    // the same idea) before measuring drift.
    let series: Vec<Vec<f64>> = stats
        .chunks(10)
        .map(|chunk| {
            let mut avg = vec![0.0f64; cfg.experts];
            for s in chunk {
                for (a, &f) in avg.iter_mut().zip(s.routing[0].frequencies().iter()) {
                    *a += f as f64 / chunk.len() as f64;
                }
            }
            avg
        })
        .collect();
    let report = StabilityReport::new(series);
    // The paper's fine-tuning LR (3e-5) barely moves the gate: windowed
    // drift must be small.
    assert!(
        report.max_consecutive_tv() < 0.15,
        "windowed drift too large: {}",
        report.max_consecutive_tv()
    );
    assert!(
        report.end_to_end_tv() < 0.15,
        "end-to-end drift too large: {}",
        report.end_to_end_tv()
    );
}

#[test]
fn selected_scores_are_confident() {
    // Fig. 3(b): selected-expert score sums cluster well above chance.
    let (mut model, mut experts, cfg) = pretrained(120, 7);
    let tok = CharTokenizer::new();
    let data = TokenDataset::from_text(&tok, &Corpus::TinyShakespeare.generate(20_000, 1));
    let batch = data.sample_batch(4, cfg.seq_len, &mut DetRng::new(3));
    model.forward(&batch.inputs, batch.batch_size, batch.seq_len, &mut experts);
    let info = &model.routing_snapshot()[0];
    let cdf = Cdf::from_samples(info.selected_score_sums());
    // Chance level for top-2 of 6 experts is 2/6 = 0.333.
    assert!(
        cdf.mean() > 0.34,
        "selected scores should beat chance: mean {:.3}",
        cdf.mean()
    );
    assert!(
        cdf.fraction_above(1.0) == 0.0,
        "score sums are probabilities"
    );
}

#!/usr/bin/env bash
# Repository verification: tier-1 build+test, formatting, and the kernel
# micro-bench (emits BENCH_kernels.json in the repo root).
#
# Usage: scripts/verify.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
for arg in "$@"; do
    case "$arg" in
    --no-bench) run_bench=0 ;;
    *)
        echo "unknown argument: $arg" >&2
        echo "usage: scripts/verify.sh [--no-bench]" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> exchange parity grid (release): {transport x coalesce x microbatch x depth x wire}, single-owner + replicated arms"
cargo test --release -q --test transport_parity

echo "==> replication gate (release): degree-1 bitwise identity + loss-for-loss replicated training"
cargo test --release -q --test replication

echo "==> migration/overlap parity grid (release): background shadow-install cutover bitwise identical to stop-the-world sync on {channel, tcp-threads, tcp}, incl. replicated arm"
cargo test --release -q --test migration

echo "==> int8 wire accuracy gate (release): quantized loss curve tracks exact"
cargo test --release -q --test quant_accuracy

echo "==> trace smoke: quickstart under VELA_TRACE=jsonl + trace_summary --check"
trace_out=target/quickstart-trace.jsonl
rm -f "$trace_out"
VELA_TRACE=jsonl VELA_TRACE_OUT="$trace_out" \
    cargo run --release -p vela --example quickstart >/dev/null
cargo run --release -p vela-bench --bin trace_summary -- --check "$trace_out"

echo "==> multi-process smoke: master + worker processes over TCP loopback"
cargo run --release -p vela --example tcp_smoke

echo "==> distributed trace gate: traced tcp quickstart, merge, --check"
tcp_trace=target/tcp-quickstart-trace.jsonl
rm -f "$tcp_trace" "$tcp_trace".worker* "$tcp_trace".merged*
VELA_TRANSPORT=tcp VELA_TRACE=jsonl VELA_TRACE_OUT="$tcp_trace" \
    cargo run --release -p vela --example quickstart >/dev/null
# Each unmerged per-process trace holds only its own half of every
# dispatch->compute->result flow chain, so --check must REJECT it:
# passing here means the flow-endpoint validation is broken.
if cargo run --release -p vela-bench --bin trace_summary -- --check "$tcp_trace" >/dev/null 2>&1; then
    echo "FAIL: unmerged master trace must not pass trace_summary --check" >&2
    exit 1
fi
for worker_trace in "$tcp_trace".worker*; do
    if cargo run --release -p vela-bench --bin trace_summary -- --check "$worker_trace" >/dev/null 2>&1; then
        echo "FAIL: unmerged worker trace must not pass trace_summary --check" >&2
        exit 1
    fi
done
# The merged trace rebases worker clocks onto the master timeline and
# completes every flow chain; --check also gates attribution coverage.
cargo run --release -p vela-bench --bin trace_summary -- merge "$tcp_trace"
cargo run --release -p vela-bench --bin trace_summary -- --check "$tcp_trace".merged

if [ "$run_bench" = 1 ]; then
    echo "==> bench smoke: serial regression gate vs committed BENCH_kernels.json"
    cargo run --release -p vela-bench --bin bench_kernels -- --quick --check BENCH_kernels.json

    echo "==> transport bench check: frame coalescing + ledger invariants + replication straggler gate + migration overlap gate (>=50% of sync blocking hidden at equal ledger bytes)"
    # Needs target/release/vela_worker for the tcp rows; the tier-1 build
    # above produced it.
    cargo run --release -p vela-bench --bin bench_transport -- --quick --check BENCH_transport.json

    echo "==> kernel micro-bench (BENCH_kernels.json)"
    cargo run --release -p vela-bench --bin bench_kernels
fi

echo "==> verify OK"
